#include "resilience/schemes.hpp"

#include <vector>

#include "resilience/primitives.hpp"

namespace corec::resilience {

using staging::Breakdown;
using staging::DataObject;
using staging::ObjectDescriptor;
using staging::ObjectLocation;
using staging::Protection;
using staging::StoredKind;

SimTime NoneScheme::protect(const DataObject& obj, ServerId primary,
                            const ObjectDescriptor* previous,
                            SimTime arrived, Breakdown* bd) {
  if (previous != nullptr) retire_object(*service_, *previous);
  return place_replicated(*service_, obj, primary, /*n_replicas=*/0,
                          arrived, bd);
}

SimTime ReplicationScheme::protect(const DataObject& obj, ServerId primary,
                                   const ObjectDescriptor* previous,
                                   SimTime arrived, Breakdown* bd) {
  if (previous != nullptr) retire_object(*service_, *previous);
  return place_replicated(*service_, obj, primary, n_level_, arrived, bd);
}

void ReplicationScheme::on_server_replaced(ServerId s, SimTime now) {
  // Aggressive re-mirroring: restore every copy that belongs on `s`.
  std::vector<ObjectDescriptor> todo;
  service_->directory().for_each(
      [&](const ObjectDescriptor& desc, const ObjectLocation& loc) {
        bool holder = loc.primary == s;
        for (ServerId r : loc.replicas) holder = holder || r == s;
        if (holder) todo.push_back(desc);
      });
  Breakdown bd;
  for (const auto& desc : todo) {
    rebuild_on(*service_, desc, s, now, &bd);
  }
}

SimTime ErasureScheme::protect(const DataObject& obj, ServerId primary,
                               const ObjectDescriptor* previous,
                               SimTime arrived, Breakdown* bd) {
  // Updating an encoded object first reads the stripe's peer chunks
  // (the Section II-A erasure update penalty), then re-encodes. The
  // kFreshEncode ablation skips the peer reads.
  SimTime start = arrived;
  if (previous != nullptr) {
    if (update_mode_ == EcUpdateMode::kReconstructWrite) {
      start = charge_stripe_peer_reads(*service_, *previous, primary,
                                       arrived, bd);
    }
    retire_object(*service_, *previous);
  }
  // "encodes all data objects locally": the primary both receives the
  // payload and performs the encode.
  return place_encoded(*service_, obj, primary, k_, m_,
                       /*encoder=*/primary, start, bd);
}

void ErasureScheme::on_server_replaced(ServerId s, SimTime now) {
  // Aggressive recovery: rebuild every shard of `s` immediately. The
  // burst of decode + gather traffic lands on the survivor queues all
  // at once — the interference Figure 10 contrasts with lazy recovery.
  std::vector<ObjectDescriptor> todo;
  service_->directory().for_each(
      [&](const ObjectDescriptor& desc, const ObjectLocation& loc) {
        for (ServerId member : loc.stripe_servers) {
          if (member == s) {
            todo.push_back(desc);
            return;
          }
        }
        if (loc.primary == s) todo.push_back(desc);
      });
  Breakdown bd;
  for (const auto& desc : todo) {
    rebuild_on(*service_, desc, s, now, &bd);
  }
}

SimTime RandomHybridScheme::protect(const DataObject& obj, ServerId primary,
                                    const ObjectDescriptor* previous,
                                    SimTime arrived, Breakdown* bd) {
  // No classification: flip the storage-constrained coin on every
  // write, independent of access history. Re-encoding an object that
  // is currently encoded pays the stripe peer-read penalty first.
  bool replicate = service_->rng().bernoulli(p_replicate_);
  SimTime start = arrived;
  if (previous != nullptr) {
    if (!replicate) {
      start = charge_stripe_peer_reads(*service_, *previous, primary,
                                       arrived, bd);
    }
    retire_object(*service_, *previous);
  }
  if (replicate) {
    return place_replicated(*service_, obj, primary, n_level_, start,
                            bd);
  }
  return place_encoded(*service_, obj, primary, k_, m_,
                       /*encoder=*/primary, start, bd);
}

void RandomHybridScheme::on_server_replaced(ServerId s, SimTime now) {
  std::vector<ObjectDescriptor> todo;
  service_->directory().for_each(
      [&](const ObjectDescriptor& desc, const ObjectLocation& loc) {
        bool holder = loc.primary == s;
        for (ServerId r : loc.replicas) holder = holder || r == s;
        for (ServerId member : loc.stripe_servers) {
          holder = holder || member == s;
        }
        if (holder) todo.push_back(desc);
      });
  Breakdown bd;
  for (const auto& desc : todo) {
    rebuild_on(*service_, desc, s, now, &bd);
  }
}

}  // namespace corec::resilience
