#include "resilience/groups.hpp"

#include <algorithm>
#include <cassert>

namespace corec::resilience {

std::vector<ServerId> ring_group(const staging::StagingService& service,
                                 ServerId s, std::size_t group_size) {
  const auto& ring = service.ring();
  assert(group_size >= 1 && group_size <= ring.size());
  std::size_t pos = service.ring_position(s);
  std::size_t num_groups = std::max<std::size_t>(1, ring.size() / group_size);
  std::size_t group_idx = std::min(pos / group_size, num_groups - 1);
  std::size_t begin = group_idx * group_size;
  std::size_t end = (group_idx == num_groups - 1) ? ring.size()
                                                  : begin + group_size;
  std::vector<ServerId> members;
  members.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) members.push_back(ring[i]);
  return members;
}

std::vector<ServerId> ring_group_from(const staging::StagingService& service,
                                      ServerId s, std::size_t group_size) {
  std::vector<ServerId> members = ring_group(service, s, group_size);
  auto it = std::find(members.begin(), members.end(), s);
  assert(it != members.end());
  std::rotate(members.begin(), it, members.end());
  return members;
}

}  // namespace corec::resilience
