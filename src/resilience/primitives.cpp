#include "resilience/primitives.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

#include "common/failpoint.hpp"
#include "resilience/groups.hpp"

namespace corec::resilience {

using staging::Breakdown;
using staging::DataObject;
using staging::ObjectDescriptor;
using staging::ObjectLocation;
using staging::Protection;
using staging::ShardHealth;
using staging::ShardIndex;
using staging::StagingService;
using staging::StoredKind;

SimTime place_replicated(StagingService& service, const DataObject& obj,
                         ServerId primary, std::size_t n_replicas,
                         SimTime arrived, Breakdown* bd) {
  const auto& cost = service.cost();

  // Primary copy.
  Status st = service.store_at(primary, obj, StoredKind::kPrimary);
  assert(st.ok());
  (void)st;

  // Replica targets. Pool-map placement takes the next alive targets of
  // the object's HRW ranking (so any map holder can recompute the
  // replica set); ring placement takes the other members of the
  // replication group, walking the ring past dead members.
  std::vector<ServerId> replicas;
  if (service.options().placement == staging::PlacementMode::kPoolMap) {
    auto group = service.placement_group(obj.desc.box, primary,
                                         n_replicas + 1);
    replicas.assign(group.begin() + 1, group.end());
  } else {
    auto group = ring_group_from(service, primary,
                                 n_replicas + 1);
    for (std::size_t i = 1;
         i < group.size() && replicas.size() < n_replicas; ++i) {
      if (service.alive(group[i])) replicas.push_back(group[i]);
    }
    for (std::size_t step = 1;
         replicas.size() < n_replicas && step < service.num_servers();
         ++step) {
      ServerId cand = service.ring_next(primary, n_replicas + step);
      if (cand != primary && service.alive(cand) &&
          std::find(replicas.begin(), replicas.end(), cand) ==
              replicas.end()) {
        replicas.push_back(cand);
      }
    }
  }

  // Pipelined replica chain: durable after N link hops plus one
  // serialization of the payload (C_r = l * N + c).
  SimTime durable = arrived;
  SimTime serialization =
      cost.transfer_time(obj.logical_size) - cost.link_latency;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    SimTime arrival = arrived +
                      static_cast<SimTime>(i + 1) * cost.link_latency +
                      serialization;
    bd->transport += cost.link_latency;
    SimTime service_time = cost.copy_time(obj.logical_size);
    bd->copy += service_time;
    if (auto fp = COREC_FAILPOINT("staging.replica.drop_write")) {
      // The replica write is acknowledged but silently dropped: time is
      // charged, bytes never land. Reads fail over; the scrubber finds
      // and repairs the hole.
    } else {
      DataObject replica = obj;
      Status rst =
          service.store_at(replicas[i], std::move(replica),
                           StoredKind::kReplica);
      assert(rst.ok());
      (void)rst;
    }
    durable = std::max(durable,
                       service.serve_at(replicas[i], arrival, service_time));
  }
  bd->transport += replicas.empty() ? 0 : serialization;

  ObjectLocation loc;
  loc.primary = primary;
  loc.protection =
      replicas.empty() ? Protection::kNone : Protection::kReplicated;
  loc.replicas = std::move(replicas);
  loc.logical_size = obj.logical_size;
  loc.object_checksum = obj.phantom ? 0 : obj.checksum;
  // The write is durable only once both the data copies and the
  // metadata registration (which itself replicates under src/meta/)
  // have landed.
  SimTime meta_ack = service.directory().upsert(obj.desc, loc);
  bd->metadata += cost.metadata_op;
  return std::max(durable + cost.metadata_op, meta_ack);
}

StripePayload make_stripe_payload(const erasure::Codec& codec,
                                  const DataObject& obj, std::size_t k,
                                  std::size_t m) {
  StripePayload stripe;
  stripe.chunk_size =
      (obj.logical_size + k - 1) / std::max<std::size_t>(k, 1);
  if (obj.phantom) return stripe;
  const std::size_t chunk = stripe.chunk_size;

  stripe.shards.reserve(k + m);
  std::vector<ByteSpan> data_spans(k);
  // Data shards: views into obj.data, zero concatenation. Only a chunk
  // that runs past the payload end (the padded tail) materializes.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t begin = i * chunk;
    const std::size_t have =
        begin < obj.data.size() ? obj.data.size() - begin : 0;
    PayloadBuffer view;
    if (have >= chunk) {
      view = obj.data.slice(begin, chunk);
    } else {
      // Pool-backed scratch: the padded tail recycles through the slab
      // magazines instead of a fresh heap carve per demotion.
      view = PayloadBuffer::zeros(chunk);
      if (have > 0) {
        std::memcpy(view.mutable_span().data(), obj.data.data() + begin,
                    have);
        payload_metrics().bytes_copied.fetch_add(
            have, std::memory_order_relaxed);
      }
    }
    data_spans[i] = view.span();
    stripe.shards.push_back(DataObject::real(
        obj.desc.shard_of(static_cast<ShardIndex>(1 + i)),
        std::move(view)));
  }

  // Parity: one pooled allocation for all m chunks, written in place
  // by the fused view kernels, then sliced into per-shard views.
  PayloadBuffer parity = PayloadBuffer::zeros(chunk * m);
  if (chunk > 0 && m > 0) {
    MutableByteSpan parity_all = parity.mutable_span();
    std::vector<MutableByteSpan> parity_spans(m);
    for (std::size_t j = 0; j < m; ++j) {
      parity_spans[j] = parity_all.subspan(j * chunk, chunk);
    }
    Status est = codec.encode_view(data_spans.data(), k,
                                   parity_spans.data(), m);
    assert(est.ok());
    (void)est;
  }
  for (std::size_t j = 0; j < m; ++j) {
    stripe.shards.push_back(DataObject::real(
        obj.desc.shard_of(static_cast<ShardIndex>(1 + k + j)),
        parity.slice(j * chunk, chunk)));
  }
  return stripe;
}

std::vector<ServerId> stripe_layout(StagingService& service,
                                    const geom::BoundingBox& box,
                                    ServerId primary, std::size_t n) {
  if (service.options().placement == staging::PlacementMode::kPoolMap) {
    std::vector<ServerId> stripe = service.placement_group(box, primary, n);
    assert(stripe.size() == n && "cluster smaller than stripe width");
    return stripe;
  }
  // Coding-group members with the primary in slot 0.
  std::vector<ServerId> stripe = ring_group_from(service, primary, n);
  // Undersized trailing group: extend along the ring (distinct servers).
  for (std::size_t step = 1;
       stripe.size() < n && step < service.num_servers(); ++step) {
    ServerId cand = service.ring_next(primary, n - 1 + step);
    if (std::find(stripe.begin(), stripe.end(), cand) == stripe.end()) {
      stripe.push_back(cand);
    }
  }
  stripe.resize(std::min(stripe.size(), n));
  assert(stripe.size() == n && "cluster smaller than stripe width");
  return stripe;
}

void store_stripe_shard(StagingService& service, const DataObject& obj,
                        const StripePayload* sp, std::size_t i,
                        std::size_t k, std::size_t chunk_size,
                        ServerId target, std::vector<std::uint32_t>* crcs) {
  auto shard_desc = obj.desc.shard_of(static_cast<ShardIndex>(1 + i));
  DataObject shard;
  if (obj.phantom) {
    shard = DataObject::make_phantom(shard_desc, chunk_size);
  } else {
    // Refcount bump on the stripe's shard view, no byte copy.
    shard = sp->shards[i];
    // Record the CRC of what *should* land; the torn-write and
    // bit-flip failpoints below corrupt the stored copy after this,
    // which is exactly the mismatch read-side verification catches.
    (*crcs)[i] = shard.checksum;
  }
  if (auto fp = COREC_FAILPOINT("staging.shard.crash_target");
      fp && service.num_alive() > 1) {
    service.kill_server(target);
  }
  if (!service.alive(target)) return;
  if (!obj.phantom) {
    if (auto fp = COREC_FAILPOINT("staging.shard.torn_write")) {
      std::size_t keep =
          fp.arg != 0 ? std::min<std::size_t>(fp.arg, shard.data.size())
                      : shard.data.size() / 2;
      // A truncated prefix view: the stored bytes no longer match
      // the recorded CRC. logical_size (and byte accounting) keeps
      // the full chunk, as with an in-place truncation.
      shard.data = shard.data.prefix(keep);
    }
  }
  Status sst = service.store_at(target, std::move(shard),
                                i < k ? StoredKind::kDataChunk
                                      : StoredKind::kParity);
  assert(sst.ok());
  (void)sst;
  if (!obj.phantom) {
    if (auto fp = COREC_FAILPOINT("staging.shard.bitflip")) {
      service.corrupt_at(target, shard_desc,
                         static_cast<std::size_t>(fp.rng));
    }
  }
}

SimTime register_encoded(StagingService& service, const DataObject& obj,
                         ServerId primary, std::vector<ServerId> stripe,
                         std::size_t k, std::size_t m,
                         std::size_t chunk_size,
                         std::vector<std::uint32_t> shard_crcs,
                         SimTime durable, Breakdown* bd) {
  ObjectLocation loc;
  loc.primary = primary;
  loc.protection = Protection::kEncoded;
  loc.stripe_servers = std::move(stripe);
  loc.k = static_cast<std::uint32_t>(k);
  loc.m = static_cast<std::uint32_t>(m);
  loc.chunk_size = chunk_size;
  loc.logical_size = obj.logical_size;
  loc.object_checksum = obj.phantom ? 0 : obj.checksum;
  loc.shard_checksums = std::move(shard_crcs);
  SimTime meta_ack = service.directory().upsert(obj.desc, loc);
  bd->metadata += service.cost().metadata_op;
  return std::max(durable + service.cost().metadata_op, meta_ack);
}

SimTime place_encoded(StagingService& service, const DataObject& obj,
                      ServerId primary, std::size_t k, std::size_t m,
                      ServerId encoder, SimTime start, Breakdown* bd,
                      SimTime* encode_done, const StripePayload* pre) {
  const auto& cost = service.cost();
  const std::size_t n = k + m;
  const std::size_t chunk_size =
      (obj.logical_size + k - 1) / std::max<std::size_t>(k, 1);

  std::vector<ServerId> stripe =
      stripe_layout(service, obj.desc.box, primary, n);

  // Encode on `encoder` (primary, or the helper chosen by the
  // conflict-avoiding workflow).
  SimTime enc = cost.encode_time(k, m, chunk_size);
  bd->encode += enc;
  SimTime t_enc = service.serve_at(encoder, start, enc);
  if (encode_done != nullptr) *encode_done = t_enc;

  // Build the stripe payload (real objects): chunk views over the
  // source buffer plus freshly encoded parity. Callers that prepared
  // the stripe off-thread (BatchedEncoder) pass it in via `pre`.
  StripePayload local;
  const StripePayload* sp = pre;
  if (!obj.phantom && sp == nullptr) {
    local = make_stripe_payload(
        service.codec(static_cast<std::uint32_t>(k),
                      static_cast<std::uint32_t>(m)),
        obj, k, m);
    sp = &local;
  }
  assert(sp == nullptr || sp->chunk_size == chunk_size);

  // Distribute the shards. The encoder keeps its own shard locally;
  // the others are serialized out over its link, pipelined.
  SimTime durable = t_enc;
  std::vector<std::uint32_t> shard_crcs(n, 0);
  std::size_t sent = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ServerId target = stripe[i];
    store_stripe_shard(service, obj, sp, i, k, chunk_size, target,
                       &shard_crcs);

    SimTime arrival = t_enc;
    if (target != encoder) {
      ++sent;
      SimTime xfer =
          cost.link_latency +
          static_cast<SimTime>(sent) *
              (cost.transfer_time(chunk_size) - cost.link_latency);
      bd->transport += cost.transfer_time(chunk_size);
      arrival = t_enc + xfer;
    }
    SimTime service_time = cost.copy_time(chunk_size);
    bd->copy += service_time;
    durable = std::max(durable,
                       service.serve_at(target, arrival, service_time));
  }

  return register_encoded(service, obj, primary, std::move(stripe), k, m,
                          chunk_size, std::move(shard_crcs), durable, bd);
}

SimTime charge_stripe_peer_reads(StagingService& service,
                                 const ObjectDescriptor& desc,
                                 ServerId reader, SimTime start,
                                 Breakdown* bd) {
  const ObjectLocation* loc = service.directory().find(desc);
  if (loc == nullptr || loc->protection != Protection::kEncoded) {
    return start;
  }
  const auto& cost = service.cost();
  SimTime gathered = start;
  for (std::uint32_t i = 0; i < loc->k; ++i) {
    ServerId s = loc->stripe_servers[i];
    if (s == reader || !service.alive(s)) continue;
    SimTime service_time =
        cost.request_overhead + cost.copy_time(loc->chunk_size);
    bd->copy += service_time;
    SimTime t1 = service.serve_at(s, start + cost.link_latency,
                                  service_time);
    SimTime xfer = cost.transfer_time(loc->chunk_size);
    bd->transport += cost.link_latency + xfer;
    gathered = std::max(gathered, t1 + xfer);
  }
  return gathered;
}

void retire_object(StagingService& service, const ObjectDescriptor& desc) {
  const ObjectLocation* loc = service.directory().find(desc);
  if (loc == nullptr) return;
  if (loc->protection == Protection::kEncoded) {
    for (std::size_t i = 0; i < loc->stripe_servers.size(); ++i) {
      service.remove_at(loc->stripe_servers[i],
                        desc.shard_of(static_cast<ShardIndex>(1 + i)));
    }
  } else {
    service.remove_at(loc->primary, desc);
    for (ServerId r : loc->replicas) service.remove_at(r, desc);
  }
  service.directory().remove(desc);
}

SimTime rebuild_on(StagingService& service, const ObjectDescriptor& desc,
                   ServerId target, SimTime start, Breakdown* bd) {
  const auto& cost = service.cost();
  const ObjectLocation* loc = service.directory().find(desc);
  if (loc == nullptr || !service.alive(target)) return start;

  if (loc->protection != Protection::kEncoded) {
    // Whole-copy repair: does `target` belong to the holder set and
    // miss its copy?
    bool is_holder =
        loc->primary == target ||
        std::find(loc->replicas.begin(), loc->replicas.end(), target) !=
            loc->replicas.end();
    if (!is_holder || service.server(target).store.contains(desc)) {
      return start;
    }
    // Find a surviving copy whose bytes still verify; a corrupt source
    // is quarantined and the next holder tried (recovery must never
    // propagate bad bytes into a fresh copy).
    std::vector<ServerId> holders = loc->replicas;
    holders.push_back(loc->primary);
    if (auto fp = COREC_FAILPOINT("recovery.source.bitflip")) {
      for (ServerId h : holders) {
        if (h != target && service.alive(h) &&
            service.corrupt_at(h, desc,
                               static_cast<std::size_t>(fp.rng))) {
          break;
        }
      }
    }
    ServerId source = kInvalidServer;
    for (ServerId h : holders) {
      if (h == target || !service.alive(h)) continue;
      if (service.probe_stored(h, desc, loc->object_checksum) ==
          ShardHealth::kOk) {
        source = h;
        break;
      }
    }
    if (source == kInvalidServer) return start;  // permanently lost

    const staging::StoredObject* stored =
        service.server(source).store.find(desc);
    SimTime read_service = cost.request_overhead +
                           cost.copy_time(loc->logical_size);
    bd->copy += read_service;
    SimTime t1 = service.serve_at(source, start + cost.link_latency,
                                  read_service);
    SimTime xfer = cost.transfer_time(loc->logical_size);
    bd->transport += cost.link_latency + xfer;
    SimTime write_service = cost.copy_time(loc->logical_size);
    bd->copy += write_service;
    SimTime t2 = service.serve_at(target, t1 + xfer, write_service);
    DataObject copy = stored->object;
    copy.desc = desc;
    Status st = service.store_at(
        target, std::move(copy),
        loc->primary == target ? StoredKind::kPrimary
                               : StoredKind::kReplica);
    assert(st.ok());
    (void)st;
    return t2;
  }

  // Encoded object: reconstruct the shards that should live on target.
  const std::uint32_t k = loc->k;
  const std::uint32_t n = loc->k + loc->m;
  if (auto fp = COREC_FAILPOINT("recovery.shard.bitflip")) {
    // Model corruption discovered mid-recovery: flip a bit in the first
    // real surviving shard before the source scan verifies it.
    for (std::uint32_t i = 0; i < n; ++i) {
      ServerId s = loc->stripe_servers[i];
      if (s == target || !service.alive(s)) continue;
      if (service.corrupt_at(s,
                             desc.shard_of(static_cast<ShardIndex>(1 + i)),
                             static_cast<std::size_t>(fp.rng))) {
        break;
      }
    }
  }
  std::vector<std::uint32_t> missing_here;
  std::vector<std::size_t> erased;
  std::vector<std::uint32_t> survivors;
  for (std::uint32_t i = 0; i < n; ++i) {
    ServerId s = loc->stripe_servers[i];
    auto shard_desc = desc.shard_of(static_cast<ShardIndex>(1 + i));
    // Verified survivors only: a shard failing its checksum becomes one
    // more erasure for the decode below to reconstruct around.
    if (service.probe_stored(s, shard_desc,
                             staging::shard_checksum(*loc, i)) ==
        ShardHealth::kOk) {
      survivors.push_back(i);
    } else {
      erased.push_back(i);
      if (s == target) missing_here.push_back(i);
    }
  }
  if (missing_here.empty()) return start;
  if (survivors.size() < k) return start;  // unrecoverable for now

  // Gather k surviving shards at the target and decode there.
  SimTime gathered = start;
  std::size_t used = 0;
  for (std::uint32_t i : survivors) {
    if (used == k) break;
    ++used;
    ServerId s = loc->stripe_servers[i];
    SimTime read_service =
        cost.request_overhead + cost.copy_time(loc->chunk_size);
    bd->copy += read_service;
    SimTime t1 = service.serve_at(s, start + cost.link_latency,
                                  read_service);
    SimTime xfer = cost.transfer_time(loc->chunk_size);
    bd->transport += cost.link_latency + xfer;
    gathered = std::max(gathered, t1 + xfer);
  }
  SimTime decode_service =
      cost.decode_time(k, erased.size(), loc->chunk_size);
  bd->decode += decode_service;
  SimTime t_dec = service.serve_at(target, gathered, decode_service);

  // Real reconstruction when the shards carry real bytes.
  bool phantom = false;
  std::vector<Bytes> blocks(n, Bytes(loc->chunk_size, 0));
  for (std::uint32_t i : survivors) {
    const staging::StoredObject* stored =
        service.server(loc->stripe_servers[i])
            .store.find(desc.shard_of(static_cast<ShardIndex>(1 + i)));
    if (stored->object.phantom) {
      phantom = true;
      break;
    }
    const PayloadBuffer& src = stored->object.data;
    std::memcpy(blocks[i].data(), src.data(),
                std::min<std::size_t>(src.size(), loc->chunk_size));
  }
  if (!phantom) {
    const auto& rs = service.codec(loc->k, loc->m);
    std::vector<MutableByteSpan> spans;
    for (auto& b : blocks) spans.emplace_back(b);
    Status st = rs.decode(spans, erased);
    assert(st.ok());
    (void)st;
  }
  for (std::uint32_t i : missing_here) {
    auto shard_desc = desc.shard_of(static_cast<ShardIndex>(1 + i));
    DataObject shard =
        phantom ? DataObject::make_phantom(shard_desc, loc->chunk_size)
                : DataObject::real(shard_desc, std::move(blocks[i]));
    Status st = service.store_at(target, std::move(shard),
                                 i < k ? StoredKind::kDataChunk
                                       : StoredKind::kParity);
    assert(st.ok());
    (void)st;
  }
  return t_dec;
}

double replication_probability_for_constraint(double S,
                                              std::size_t n_level,
                                              std::size_t k,
                                              std::size_t m) {
  double er = 1.0 / (static_cast<double>(n_level) + 1.0);
  double ee = static_cast<double>(k) / static_cast<double>(k + m);
  if (S <= 0.0 || er >= ee) return 0.0;
  double pr = er * (S - ee) / (S * (er - ee));
  return std::clamp(pr, 0.0, 1.0);
}

}  // namespace corec::resilience
