#include "resilience/scrubber.hpp"

#include <algorithm>
#include <utility>

#include "resilience/primitives.hpp"

namespace corec::resilience {

using staging::ObjectDescriptor;
using staging::ObjectLocation;
using staging::Protection;
using staging::ShardHealth;
using staging::ShardIndex;

Scrubber::Scrubber(staging::StagingService* service, ScrubOptions options)
    : service_(service), options_(options) {}

void Scrubber::start() { begin_pass(); }

void Scrubber::begin_pass() {
  std::vector<ObjectDescriptor> descs;
  service_->directory().for_each(
      [&descs](const ObjectDescriptor& desc, const ObjectLocation&) {
        descs.push_back(desc);
      });

  const SimTime deadline = from_seconds(options_.mtbf_seconds / 4.0);
  const std::size_t nb = std::max<std::size_t>(1, options_.batches);
  // Never schedule at zero offset: a continuous scrubber with a tiny
  // MTBF must still make virtual-time progress between passes.
  const SimTime step =
      std::max<SimTime>(deadline / static_cast<SimTime>(nb), 1);
  for (std::size_t b = 0; b < nb; ++b) {
    std::vector<ObjectDescriptor> slice(
        descs.begin() + static_cast<std::ptrdiff_t>(b * descs.size() / nb),
        descs.begin() +
            static_cast<std::ptrdiff_t>((b + 1) * descs.size() / nb));
    const bool last = b + 1 == nb;
    service_->sim().after(
        step * static_cast<SimTime>(b + 1),
        [this, slice = std::move(slice), b, last]() mutable {
          run_batch(std::move(slice), b);
          if (last) {
            ++stats_.passes_completed;
            if (options_.continuous) begin_pass();
          }
        });
  }
}

void Scrubber::run_batch(std::vector<ObjectDescriptor> descs,
                         std::size_t batch) {
  (void)batch;
  for (const ObjectDescriptor& desc : descs) {
    scrub_object(desc, service_->sim().now());
  }
}

void Scrubber::run_pass(SimTime now) {
  std::vector<ObjectDescriptor> descs;
  service_->directory().for_each(
      [&descs](const ObjectDescriptor& desc, const ObjectLocation&) {
        descs.push_back(desc);
      });
  for (const ObjectDescriptor& desc : descs) scrub_object(desc, now);
  ++stats_.passes_completed;
}

void Scrubber::scrub_object(const ObjectDescriptor& desc, SimTime now) {
  const ObjectLocation* loc = service_->directory().find(desc);
  if (loc == nullptr) return;  // retired since the pass snapshot
  ++stats_.objects_scanned;

  if (loc->protection == Protection::kEncoded) {
    const std::uint32_t n = loc->k + loc->m;
    // Copy what verify_holder needs: repairs can upsert the directory
    // and invalidate `loc` mid-walk.
    const ObjectLocation snapshot = *loc;
    for (std::uint32_t i = 0; i < n; ++i) {
      verify_holder(desc.shard_of(static_cast<ShardIndex>(1 + i)),
                    snapshot, snapshot.stripe_servers[i],
                    staging::shard_checksum(snapshot, i), now);
    }
  } else {
    const ObjectLocation snapshot = *loc;
    std::vector<ServerId> holders;
    holders.push_back(snapshot.primary);
    holders.insert(holders.end(), snapshot.replicas.begin(),
                   snapshot.replicas.end());
    for (ServerId s : holders) {
      verify_holder(desc, snapshot, s, snapshot.object_checksum, now);
    }
  }
}

void Scrubber::verify_holder(const ObjectDescriptor& desc,
                             const ObjectLocation& loc, ServerId s,
                             std::uint32_t expected, SimTime now) {
  if (s == kInvalidServer || !service_->alive(s)) return;
  const staging::StoredObject* stored = service_->server(s).store.find(desc);
  const auto& cost = service_->cost();

  auto repair = [&] {
    if (!options_.repair) return;
    // rebuild_on is keyed by the whole object and rebuilds whatever is
    // missing on the target — the quarantined/missing entry we just
    // found. Its gather/decode/copy costs land in the scrub Breakdown.
    resilience::rebuild_on(*service_, desc.base(), s, now, &stats_.work);
    ++stats_.repairs_triggered;
  };

  if (stored == nullptr) {
    // A hole with live metadata: a dropped write or an earlier
    // quarantine whose repair never ran.
    (void)loc;
    ++stats_.missing_found;
    repair();
    return;
  }
  if (!stored->object.phantom && expected != 0) {
    ++stats_.shards_verified;
    stats_.bytes_verified += stored->object.data.size();
    // The holder spends CPU checksumming its resident bytes; charge it
    // like a local copy pass on that server's queue.
    SimTime verify_cost = cost.copy_time(stored->object.data.size());
    stats_.work.copy += verify_cost;
    service_->serve_at(s, now, verify_cost);
  }
  if (service_->probe_stored(s, desc, expected) == ShardHealth::kCorrupt) {
    ++stats_.corruptions_found;
    repair();
  }
}

}  // namespace corec::resilience
