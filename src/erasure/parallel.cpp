#include "erasure/parallel.hpp"

#include <atomic>
#include <algorithm>

namespace corec::erasure {
namespace {

/// Collects per-task statuses; keeps the first failure.
class StatusCollector {
 public:
  void record(const Status& st) {
    if (st.ok()) return;
    bool expected = false;
    if (failed_.compare_exchange_strong(expected, true)) {
      first_ = st;
    }
  }
  Status take() const { return failed_.load() ? first_ : Status::Ok(); }

 private:
  std::atomic<bool> failed_{false};
  Status first_;
};

}  // namespace

Status ParallelCoder::encode(
    const std::vector<ByteSpan>& data,
    const std::vector<MutableByteSpan>& parity) const {
  if (data.empty()) {
    return Status::InvalidArgument("parallel encode: no data blocks");
  }
  const std::size_t size = data[0].size();
  if (pool_ == nullptr || size <= slice_bytes_) {
    return codec_.encode(data, parity);
  }
  StatusCollector collector;
  for (std::size_t off = 0; off < size; off += slice_bytes_) {
    std::size_t len = std::min(slice_bytes_, size - off);
    // Sliced views: the i-th sub-stripe across every block.
    std::vector<ByteSpan> d;
    std::vector<MutableByteSpan> p;
    d.reserve(data.size());
    p.reserve(parity.size());
    for (const auto& b : data) d.push_back(b.subspan(off, len));
    for (const auto& b : parity) p.push_back(b.subspan(off, len));
    pool_->submit([this, d = std::move(d), p = std::move(p),
                   &collector] { collector.record(codec_.encode(d, p)); });
  }
  pool_->wait_idle();
  return collector.take();
}

Status ParallelCoder::decode(
    const std::vector<MutableByteSpan>& blocks,
    const std::vector<std::size_t>& erased) const {
  if (blocks.empty()) {
    return Status::InvalidArgument("parallel decode: no blocks");
  }
  const std::size_t size = blocks[0].size();
  if (pool_ == nullptr || size <= slice_bytes_) {
    return codec_.decode(blocks, erased);
  }
  StatusCollector collector;
  for (std::size_t off = 0; off < size; off += slice_bytes_) {
    std::size_t len = std::min(slice_bytes_, size - off);
    std::vector<MutableByteSpan> b;
    b.reserve(blocks.size());
    for (const auto& blk : blocks) b.push_back(blk.subspan(off, len));
    pool_->submit([this, b = std::move(b), erased, &collector] {
      collector.record(codec_.decode(b, erased));
    });
  }
  pool_->wait_idle();
  return collector.take();
}

}  // namespace corec::erasure
