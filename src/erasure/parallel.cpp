#include "erasure/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace corec::erasure {
namespace {

/// Collects per-task statuses; keeps the first failure.
class StatusCollector {
 public:
  void record(const Status& st) {
    if (st.ok()) return;
    bool expected = false;
    if (failed_.compare_exchange_strong(expected, true)) {
      first_ = st;
    }
  }
  Status take() const { return failed_.load() ? first_ : Status::Ok(); }

 private:
  std::atomic<bool> failed_{false};
  Status first_;
};

std::size_t l2_cache_bytes() {
#if defined(_SC_LEVEL2_CACHE_SIZE)
  long v = sysconf(_SC_LEVEL2_CACHE_SIZE);
  if (v > 0) return static_cast<std::size_t>(v);
#endif
  return 1u << 20;  // common desktop/server L2 when undetectable
}

/// L2-derived slice: one task touches n = k+m block slices, so aim for
/// half the L2 across the whole sub-stripe, clamped to keep tasks
/// meaningful but plentiful, and rounded to whole cache lines.
std::size_t auto_slice_bytes(std::size_t stripe_width) {
  static const std::size_t l2 = l2_cache_bytes();
  std::size_t per_block = l2 / 2 / std::max<std::size_t>(stripe_width, 1);
  per_block = std::clamp<std::size_t>(per_block, 16u << 10, 1u << 20);
  return per_block & ~static_cast<std::size_t>(63);
}

}  // namespace

std::size_t ParallelCoder::effective_slice_bytes() const {
  return slice_bytes_ != 0 ? slice_bytes_ : auto_slice_bytes(codec_.n());
}

Status ParallelCoder::encode(
    const std::vector<ByteSpan>& data,
    const std::vector<MutableByteSpan>& parity) const {
  if (data.empty()) {
    return Status::InvalidArgument("parallel encode: no data blocks");
  }
  const std::size_t size = data[0].size();
  const std::size_t slice = effective_slice_bytes();
  if (pool_ == nullptr || size <= slice) {
    return codec_.encode(data, parity);
  }
  const std::size_t slices = (size + slice - 1) / slice;
  const std::size_t kd = data.size();
  const std::size_t kp = parity.size();
  // Per-call scratch: every task's span table lives in these two flat
  // arrays, so the hot path performs no per-slice allocations.
  std::vector<ByteSpan> dspans(slices * kd);
  std::vector<MutableByteSpan> pspans(slices * kp);
  StatusCollector collector;
  for (std::size_t s = 0; s < slices; ++s) {
    const std::size_t off = s * slice;
    const std::size_t len = std::min(slice, size - off);
    ByteSpan* d = dspans.data() + s * kd;
    MutableByteSpan* p = pspans.data() + s * kp;
    for (std::size_t i = 0; i < kd; ++i) d[i] = data[i].subspan(off, len);
    for (std::size_t i = 0; i < kp; ++i) {
      p[i] = parity[i].subspan(off, len);
    }
    pool_->submit([this, d, kd, p, kp, &collector] {
      collector.record(codec_.encode_view(d, kd, p, kp));
    });
  }
  pool_->wait_idle();
  return collector.take();
}

Status ParallelCoder::decode(
    const std::vector<MutableByteSpan>& blocks,
    const std::vector<std::size_t>& erased) const {
  if (blocks.empty()) {
    return Status::InvalidArgument("parallel decode: no blocks");
  }
  const std::size_t size = blocks[0].size();
  const std::size_t slice = effective_slice_bytes();
  if (pool_ == nullptr || size <= slice) {
    return codec_.decode(blocks, erased);
  }
  const std::size_t slices = (size + slice - 1) / slice;
  const std::size_t nb = blocks.size();
  std::vector<MutableByteSpan> bspans(slices * nb);
  StatusCollector collector;
  // Tasks share one read-only view of `erased` (decode_view) instead
  // of copying the index vector into every closure; wait_idle() below
  // keeps it alive past the last task.
  const std::size_t* er = erased.data();
  const std::size_t ne = erased.size();
  for (std::size_t s = 0; s < slices; ++s) {
    const std::size_t off = s * slice;
    const std::size_t len = std::min(slice, size - off);
    MutableByteSpan* b = bspans.data() + s * nb;
    for (std::size_t i = 0; i < nb; ++i) {
      b[i] = blocks[i].subspan(off, len);
    }
    pool_->submit([this, b, nb, er, ne, &collector] {
      collector.record(codec_.decode_view(b, nb, er, ne));
    });
  }
  pool_->wait_idle();
  return collector.take();
}

}  // namespace corec::erasure
