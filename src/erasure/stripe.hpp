// Stripe assembly helpers: pack variable-size object payloads into the
// fixed-width blocks a codec expects (zero padding), and recover them.
#pragma once

#include <cstddef>
#include <vector>

#include "common/buffer.hpp"
#include "common/status.hpp"
#include "erasure/codec.hpp"

namespace corec::erasure {

/// A materialized stripe: k data blocks followed by m parity blocks, all
/// `block_size` bytes. Data blocks are zero-padded copies of the source
/// payloads; the original lengths are kept so payloads round-trip exactly.
struct Stripe {
  std::size_t block_size = 0;
  std::vector<Bytes> blocks;                // size n = k + m
  std::vector<std::size_t> payload_sizes;   // size k, pre-padding lengths
  std::vector<std::uint32_t> block_checksums;  // size n, CRC32C per block

  std::size_t n() const { return blocks.size(); }
};

/// Builds a stripe from up to k payloads (missing trailing payloads are
/// treated as empty) and encodes parity with `codec`. The block size is
/// the maximum payload size (or `min_block_size` if larger).
StatusOr<Stripe> build_stripe(const Codec& codec,
                              const std::vector<ByteSpan>& payloads,
                              std::size_t min_block_size = 0);

/// Re-encodes the parity blocks of `stripe` in place using `codec`.
Status reencode_parity(const Codec& codec, Stripe* stripe);

/// Reconstructs the erased blocks of `stripe` in place.
Status repair_stripe(const Codec& codec, Stripe* stripe,
                     const std::vector<std::size_t>& erased);

/// Extracts payload `i` (unpadded) from a stripe's data block.
StatusOr<Bytes> extract_payload(const Stripe& stripe, std::size_t i);

/// Recomputes and records every block's CRC32C. build_stripe and the
/// repair helpers call this; use it directly after mutating payloads
/// by hand.
void checksum_stripe(Stripe* stripe);

/// Indices of blocks whose bytes no longer match their recorded
/// checksum (silent corruption since the last checksum_stripe).
std::vector<std::size_t> verify_stripe(const Stripe& stripe);

/// Repairs the explicitly `erased` blocks plus any checksum-mismatched
/// ones — a corrupt block is treated identically to a missing one —
/// then refreshes the recorded checksums. Fails like Codec::decode when
/// the combined erasure set exceeds m.
Status repair_stripe_verified(const Codec& codec, Stripe* stripe,
                              std::vector<std::size_t> erased);

}  // namespace corec::erasure
