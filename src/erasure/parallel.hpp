// Thread-parallel erasure coding. Large payloads are cut into
// independent sub-stripes along the block length and encoded/decoded on
// a worker pool — the same decomposition a multi-core staging server
// uses to hide encode latency. Results are bit-identical to the
// single-threaded codec (tests verify).
#pragma once

#include <cstddef>

#include "common/buffer.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "erasure/codec.hpp"

namespace corec::erasure {

/// Parallel wrapper around any Codec. The wrapped codec must be
/// thread-safe for concurrent const calls (both RS implementations
/// are: their tables are immutable after construction).
class ParallelCoder {
 public:
  /// `slice_bytes` is the per-task block slice (granularity of the
  /// fan-out); small slices parallelize small payloads but add
  /// scheduling overhead. 0 (the default) sizes slices off the L2
  /// cache so one task's working set — all k+m block slices — stays
  /// cache-resident while the kernels sweep it.
  ParallelCoder(const Codec& codec, ThreadPool* pool,
                std::size_t slice_bytes = 0)
      : codec_(codec), pool_(pool), slice_bytes_(slice_bytes) {}

  /// Parallel encode: same contract as Codec::encode.
  Status encode(const std::vector<ByteSpan>& data,
                const std::vector<MutableByteSpan>& parity) const;

  /// Parallel decode: same contract as Codec::decode.
  Status decode(const std::vector<MutableByteSpan>& blocks,
                const std::vector<std::size_t>& erased) const;

  /// The slice this coder would use for the wrapped codec's stripe
  /// width (resolves the L2-derived default; exposed for tests).
  std::size_t effective_slice_bytes() const;

 private:
  const Codec& codec_;
  ThreadPool* pool_;
  std::size_t slice_bytes_;
};

}  // namespace corec::erasure
