// Erasure codec interface. A codec turns k equal-size data blocks into
// m parity blocks and can reconstruct any missing blocks as long as at
// least k of the k+m survive (MDS property; the XOR baseline tolerates
// exactly one loss).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "common/status.hpp"

namespace corec::erasure {

/// Shared erasure-codec interface (Reed-Solomon, XOR, ...).
class Codec {
 public:
  virtual ~Codec() = default;

  /// Number of data blocks per stripe.
  virtual std::size_t k() const = 0;
  /// Number of parity blocks per stripe (fault tolerance level).
  virtual std::size_t m() const = 0;
  /// Total stripe width n = k + m.
  std::size_t n() const { return k() + m(); }

  /// Human-readable name, e.g. "rs-vandermonde(6,2)".
  virtual std::string name() const = 0;

  /// Computes parity[0..m) from data[0..k). All spans must share one
  /// block size; parity buffers are overwritten.
  Status encode(const std::vector<ByteSpan>& data,
                const std::vector<MutableByteSpan>& parity) const {
    return encode_view(data.data(), data.size(), parity.data(),
                       parity.size());
  }

  /// Reconstructs the blocks listed in `erased` (global indices:
  /// 0..k-1 data, k..n-1 parity). `blocks` holds all n block buffers;
  /// entries at erased indices are outputs, all others must contain the
  /// surviving contents. Fails with DataLoss if |erased| > m.
  Status decode(const std::vector<MutableByteSpan>& blocks,
                const std::vector<std::size_t>& erased) const {
    return decode_view(blocks.data(), blocks.size(), erased.data(),
                       erased.size());
  }

  /// Pointer-based primitives behind encode()/decode(). Callers that
  /// manage their own span scratch (ParallelCoder slices one stripe
  /// into many sub-stripes) use these directly to avoid materializing
  /// a std::vector per call.
  virtual Status encode_view(const ByteSpan* data, std::size_t nd,
                             const MutableByteSpan* parity,
                             std::size_t np) const = 0;

  /// Partial-parity accumulation: folds the contribution of the data
  /// blocks with stripe indices [first, first + count) into all m
  /// parity buffers. `data` holds exactly those `count` blocks
  /// (data[0] is stripe index `first`). With accumulate == false the
  /// parity buffers are overwritten with just this range's
  /// contribution — no prior zero-fill needed; with accumulate == true
  /// it is XOR-added onto the partial parity already present. Field
  /// addition is XOR, so splitting the k blocks across successive
  /// calls composes exactly: covering 0..k-1 in any contiguous runs
  /// yields parity byte-identical to one encode_view over all k
  /// blocks. This is the per-hop primitive of the pipelined ring
  /// encoder: each replica holder folds in its chunk run and forwards
  /// the accumulated parity to the next hop.
  virtual Status encode_partial_view(const ByteSpan* data,
                                     std::size_t first, std::size_t count,
                                     const MutableByteSpan* parity,
                                     std::size_t np,
                                     bool accumulate) const = 0;
  virtual Status decode_view(const MutableByteSpan* blocks,
                             std::size_t nb, const std::size_t* erased,
                             std::size_t ne) const = 0;

  /// Incremental parity maintenance: given the delta (old XOR new) of
  /// data block `index`, updates all parity blocks in place. This is the
  /// operation the paper identifies as the erasure-coding write
  /// penalty: every update of an encoded object must touch all parities.
  virtual Status update_parity(std::size_t index, ByteSpan delta,
                               const std::vector<MutableByteSpan>& parity)
      const = 0;
};

/// Which Reed-Solomon generator-matrix construction to use.
enum class RsConstruction { kVandermonde, kCauchy };

/// Creates a systematic Reed-Solomon codec over GF(2^8).
/// Requires 1 <= k, 1 <= m, k + m <= 255.
StatusOr<std::unique_ptr<Codec>> make_reed_solomon(
    std::size_t k, std::size_t m,
    RsConstruction construction = RsConstruction::kVandermonde);

/// Creates the single-parity XOR codec (RAID-5 style; m == 1).
std::unique_ptr<Codec> make_xor(std::size_t k);

}  // namespace corec::erasure
