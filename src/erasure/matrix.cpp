#include "erasure/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "gf/gf256.hpp"

namespace corec::erasure {

GfMatrix GfMatrix::identity(std::size_t n) {
  GfMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

GfMatrix GfMatrix::vandermonde(std::size_t rows, std::size_t cols) {
  GfMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      // alpha^(r*c) with alpha = 2 (field generator).
      m.at(r, c) = gf::pow(2, static_cast<unsigned>(r * c) %
                                  gf::kGroupOrder);
    }
  }
  return m;
}

GfMatrix GfMatrix::cauchy(std::size_t rows, std::size_t cols) {
  assert(rows + cols <= gf::kFieldSize && "Cauchy points must be distinct");
  GfMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      auto x = static_cast<std::uint8_t>(r + cols);
      auto y = static_cast<std::uint8_t>(c);
      m.at(r, c) = gf::inv(gf::add(x, y));
    }
  }
  return m;
}

GfMatrix GfMatrix::multiply(const GfMatrix& other) const {
  assert(cols_ == other.rows_);
  GfMatrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      std::uint8_t a = at(i, k);
      if (a == 0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out.at(i, j) =
            gf::add(out.at(i, j), gf::mul(a, other.at(k, j)));
      }
    }
  }
  return out;
}

void GfMatrix::scale_row(std::size_t r, std::uint8_t c) {
  for (std::size_t j = 0; j < cols_; ++j) at(r, j) = gf::mul(at(r, j), c);
}

void GfMatrix::add_scaled_row(std::size_t dst, std::size_t src,
                              std::uint8_t c) {
  for (std::size_t j = 0; j < cols_; ++j) {
    at(dst, j) = gf::add(at(dst, j), gf::mul(at(src, j), c));
  }
}

void GfMatrix::swap_rows(std::size_t a, std::size_t b) {
  if (a == b) return;
  for (std::size_t j = 0; j < cols_; ++j) std::swap(at(a, j), at(b, j));
}

StatusOr<GfMatrix> GfMatrix::inverted() const {
  assert(rows_ == cols_);
  GfMatrix work = *this;
  GfMatrix inv = identity(rows_);
  for (std::size_t col = 0; col < cols_; ++col) {
    // Find pivot.
    std::size_t pivot = col;
    while (pivot < rows_ && work.at(pivot, col) == 0) ++pivot;
    if (pivot == rows_) {
      return Status::FailedPrecondition("matrix is singular");
    }
    work.swap_rows(col, pivot);
    inv.swap_rows(col, pivot);
    std::uint8_t scale = gf::inv(work.at(col, col));
    work.scale_row(col, scale);
    inv.scale_row(col, scale);
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == col) continue;
      std::uint8_t factor = work.at(r, col);
      if (factor == 0) continue;
      work.add_scaled_row(r, col, factor);
      inv.add_scaled_row(r, col, factor);
    }
  }
  return inv;
}

GfMatrix GfMatrix::select_rows(
    const std::vector<std::size_t>& row_idx) const {
  GfMatrix out(row_idx.size(), cols_);
  for (std::size_t i = 0; i < row_idx.size(); ++i) {
    assert(row_idx[i] < rows_);
    for (std::size_t j = 0; j < cols_; ++j) {
      out.at(i, j) = at(row_idx[i], j);
    }
  }
  return out;
}

std::size_t GfMatrix::rank() const {
  GfMatrix work = *this;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < rows_; ++col) {
    std::size_t pivot = rank;
    while (pivot < rows_ && work.at(pivot, col) == 0) ++pivot;
    if (pivot == rows_) continue;
    work.swap_rows(rank, pivot);
    std::uint8_t scale = gf::inv(work.at(rank, col));
    work.scale_row(rank, scale);
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == rank) continue;
      std::uint8_t f = work.at(r, col);
      if (f) work.add_scaled_row(r, rank, f);
    }
    ++rank;
  }
  return rank;
}

Status GfMatrix::make_systematic() {
  assert(rows_ >= cols_);
  // Column-reduce so the top square block becomes the identity; the
  // transformation is applied to entire columns, preserving the code's
  // span (standard Vandermonde->systematic construction).
  for (std::size_t col = 0; col < cols_; ++col) {
    // Pivot search within the top block columns.
    std::size_t pivot_col = col;
    while (pivot_col < cols_ && at(col, pivot_col) == 0) ++pivot_col;
    if (pivot_col == cols_) {
      return Status::FailedPrecondition("top block singular");
    }
    if (pivot_col != col) {
      for (std::size_t r = 0; r < rows_; ++r) {
        std::swap(at(r, col), at(r, pivot_col));
      }
    }
    std::uint8_t scale = gf::inv(at(col, col));
    for (std::size_t r = 0; r < rows_; ++r) {
      at(r, col) = gf::mul(at(r, col), scale);
    }
    for (std::size_t c2 = 0; c2 < cols_; ++c2) {
      if (c2 == col) continue;
      std::uint8_t f = at(col, c2);
      if (f == 0) continue;
      for (std::size_t r = 0; r < rows_; ++r) {
        at(r, c2) = gf::add(at(r, c2), gf::mul(at(r, col), f));
      }
    }
  }
  return Status::Ok();
}

}  // namespace corec::erasure
