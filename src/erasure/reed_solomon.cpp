#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <sstream>

#include "erasure/codec.hpp"
#include "erasure/matrix.hpp"
#include "gf/gf256.hpp"

namespace corec::erasure {
namespace {

/// Systematic Reed-Solomon codec: generator = [I; P] where P is the
/// m x k parity-coefficient block derived from a Vandermonde or Cauchy
/// matrix. MDS: any k of the n = k + m blocks reconstruct the stripe.
class ReedSolomonCodec final : public Codec {
 public:
  ReedSolomonCodec(std::size_t k, std::size_t m, GfMatrix generator,
                   RsConstruction construction)
      : k_(k), m_(m), generator_(std::move(generator)),
        construction_(construction) {}

  std::size_t k() const override { return k_; }
  std::size_t m() const override { return m_; }

  std::string name() const override {
    std::ostringstream os;
    os << (construction_ == RsConstruction::kVandermonde
               ? "rs-vandermonde"
               : "rs-cauchy")
       << "(" << k_ << "," << m_ << ")";
    return os.str();
  }

  Status encode_view(const ByteSpan* data, std::size_t nd,
                     const MutableByteSpan* parity,
                     std::size_t np) const override {
    COREC_RETURN_IF_ERROR(check_blocks(data, nd, parity, np));
    // Fused parity rows: each parity block is produced in one pass
    // over the data with the coefficient row held in registers,
    // instead of m separate zero-fill + k read-modify-write sweeps.
    std::array<const std::uint8_t*, gf::kGroupOrder> srcs;
    for (std::size_t d = 0; d < k_; ++d) srcs[d] = data[d].data();
    for (std::size_t p = 0; p < m_; ++p) {
      gf::region_mul_multi(generator_.row(k_ + p), srcs.data(), k_,
                           parity[p]);
    }
    return Status::Ok();
  }

  Status encode_partial_view(const ByteSpan* data, std::size_t first,
                             std::size_t count,
                             const MutableByteSpan* parity, std::size_t np,
                             bool accumulate) const override {
    if (count == 0 || first >= k_ || count > k_ - first || np != m_) {
      return Status::InvalidArgument("partial encode: block range");
    }
    const std::size_t size = parity[0].size();
    for (std::size_t i = 0; i < count; ++i) {
      if (data[i].size() != size) {
        return Status::InvalidArgument("partial encode: data size mismatch");
      }
    }
    for (std::size_t p = 1; p < np; ++p) {
      if (parity[p].size() != size) {
        return Status::InvalidArgument(
            "partial encode: parity size mismatch");
      }
    }
    // Each parity row restricted to the coefficient run [first,
    // first+count) — the same fused kernels as encode_view, just over a
    // sub-range, so a full ring of hops produces bit-identical parity.
    std::array<const std::uint8_t*, gf::kGroupOrder> srcs;
    for (std::size_t d = 0; d < count; ++d) srcs[d] = data[d].data();
    for (std::size_t p = 0; p < m_; ++p) {
      const std::uint8_t* row = generator_.row(k_ + p) + first;
      if (accumulate) {
        gf::region_mul_add_multi(row, srcs.data(), count, parity[p]);
      } else {
        gf::region_mul_multi(row, srcs.data(), count, parity[p]);
      }
    }
    return Status::Ok();
  }

  Status decode_view(const MutableByteSpan* blocks, std::size_t nb,
                     const std::size_t* erased,
                     std::size_t ne) const override {
    if (nb != n()) {
      return Status::InvalidArgument("decode: expected n blocks");
    }
    if (ne > m_) {
      return Status::DataLoss("more erasures than parity blocks");
    }
    if (ne == 0) return Status::Ok();
    for (std::size_t i = 0; i < ne; ++i) {
      if (erased[i] >= n()) {
        return Status::InvalidArgument("erased index range");
      }
    }
    const std::size_t block_size = blocks[0].size();
    for (std::size_t i = 0; i < nb; ++i) {
      if (blocks[i].size() != block_size) {
        return Status::InvalidArgument("decode: block size mismatch");
      }
    }

    std::vector<bool> is_erased(n(), false);
    for (std::size_t i = 0; i < ne; ++i) is_erased[erased[i]] = true;

    // Pick k surviving blocks; rows of the generator matrix restricted
    // to them form the decode system D = A * original.
    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < n() && survivors.size() < k_; ++i) {
      if (!is_erased[i]) survivors.push_back(i);
    }
    if (survivors.size() < k_) {
      return Status::DataLoss("fewer than k surviving blocks");
    }
    GfMatrix a = generator_.select_rows(survivors);
    COREC_ASSIGN_OR_RETURN(GfMatrix a_inv, a.inverted());

    // Reconstruct every erased *data* block in one fused pass:
    // data[d] = sum_j a_inv[d][j] * survivor[j].
    std::array<const std::uint8_t*, gf::kGroupOrder> srcs;
    for (std::size_t j = 0; j < k_; ++j) {
      srcs[j] = blocks[survivors[j]].data();
    }
    for (std::size_t i = 0; i < ne; ++i) {
      std::size_t d = erased[i];
      if (d >= k_) continue;
      gf::region_mul_multi(a_inv.row(d), srcs.data(), k_, blocks[d]);
    }
    // Re-derive erased parity blocks from the (now complete) data.
    for (std::size_t j = 0; j < k_; ++j) srcs[j] = blocks[j].data();
    for (std::size_t i = 0; i < ne; ++i) {
      std::size_t p = erased[i];
      if (p < k_) continue;
      gf::region_mul_multi(generator_.row(p), srcs.data(), k_,
                           blocks[p]);
    }
    return Status::Ok();
  }

  Status update_parity(std::size_t index, ByteSpan delta,
                       const std::vector<MutableByteSpan>& parity)
      const override {
    if (index >= k_) {
      return Status::InvalidArgument("update_parity: data index range");
    }
    if (parity.size() != m_) {
      return Status::InvalidArgument("update_parity: expected m parities");
    }
    for (std::size_t p = 0; p < m_; ++p) {
      if (parity[p].size() != delta.size()) {
        return Status::InvalidArgument("update_parity: size mismatch");
      }
      gf::region_mul_add(generator_.at(k_ + p, index), delta, parity[p]);
    }
    return Status::Ok();
  }

 private:
  Status check_blocks(const ByteSpan* data, std::size_t nd,
                      const MutableByteSpan* parity,
                      std::size_t np) const {
    if (nd != k_ || np != m_) {
      return Status::InvalidArgument("encode: wrong block counts");
    }
    std::size_t size = data[0].size();
    for (std::size_t i = 0; i < nd; ++i) {
      if (data[i].size() != size) {
        return Status::InvalidArgument("encode: data size mismatch");
      }
    }
    for (std::size_t i = 0; i < np; ++i) {
      if (parity[i].size() != size) {
        return Status::InvalidArgument("encode: parity size mismatch");
      }
    }
    return Status::Ok();
  }

  std::size_t k_;
  std::size_t m_;
  GfMatrix generator_;  // n x k systematic generator
  RsConstruction construction_;
};

/// Single-parity XOR codec: parity = XOR of all data blocks. Tolerates
/// exactly one erasure; used as a cheap baseline and for tests.
class XorCodec final : public Codec {
 public:
  explicit XorCodec(std::size_t k) : k_(k) {}

  std::size_t k() const override { return k_; }
  std::size_t m() const override { return 1; }
  std::string name() const override {
    return "xor(" + std::to_string(k_) + ",1)";
  }

  Status encode_view(const ByteSpan* data, std::size_t nd,
                     const MutableByteSpan* parity,
                     std::size_t np) const override {
    if (nd != k_ || np != 1) {
      return Status::InvalidArgument("xor encode: block counts");
    }
    for (std::size_t i = 0; i < nd; ++i) {
      if (data[i].size() != parity[0].size()) {
        return Status::InvalidArgument("xor encode: size mismatch");
      }
    }
    if (parity[0].empty()) return Status::Ok();
    // Seed parity with the first block, then accumulate the rest —
    // skips the separate zero-fill pass.
    std::memcpy(parity[0].data(), data[0].data(), parity[0].size());
    for (std::size_t i = 1; i < nd; ++i) {
      gf::region_xor(data[i], parity[0]);
    }
    return Status::Ok();
  }

  Status encode_partial_view(const ByteSpan* data, std::size_t first,
                             std::size_t count,
                             const MutableByteSpan* parity, std::size_t np,
                             bool accumulate) const override {
    if (count == 0 || first >= k_ || count > k_ - first || np != 1) {
      return Status::InvalidArgument("xor partial encode: block range");
    }
    for (std::size_t i = 0; i < count; ++i) {
      if (data[i].size() != parity[0].size()) {
        return Status::InvalidArgument("xor partial encode: size mismatch");
      }
    }
    if (parity[0].empty()) return Status::Ok();
    std::size_t i = 0;
    if (!accumulate) {
      std::memcpy(parity[0].data(), data[0].data(), parity[0].size());
      i = 1;
    }
    for (; i < count; ++i) gf::region_xor(data[i], parity[0]);
    return Status::Ok();
  }

  Status decode_view(const MutableByteSpan* blocks, std::size_t nb,
                     const std::size_t* erased,
                     std::size_t ne) const override {
    if (nb != k_ + 1) {
      return Status::InvalidArgument("xor decode: expected n blocks");
    }
    if (ne > 1) {
      return Status::DataLoss("xor tolerates one erasure");
    }
    if (ne == 0) return Status::Ok();
    std::size_t e = erased[0];
    if (e >= nb) return Status::InvalidArgument("erased index range");
    std::fill(blocks[e].begin(), blocks[e].end(), 0);
    for (std::size_t i = 0; i < nb; ++i) {
      if (i == e) continue;
      gf::region_xor(blocks[i], blocks[e]);
    }
    return Status::Ok();
  }

  Status update_parity(std::size_t index, ByteSpan delta,
                       const std::vector<MutableByteSpan>& parity)
      const override {
    if (index >= k_ || parity.size() != 1) {
      return Status::InvalidArgument("xor update_parity: arguments");
    }
    gf::region_xor(delta, parity[0]);
    return Status::Ok();
  }

 private:
  std::size_t k_;
};

}  // namespace

StatusOr<std::unique_ptr<Codec>> make_reed_solomon(
    std::size_t k, std::size_t m, RsConstruction construction) {
  if (k == 0 || m == 0 || k + m > gf::kGroupOrder) {
    return Status::InvalidArgument("reed-solomon requires 1<=k, 1<=m, "
                                   "k+m<=255");
  }
  GfMatrix gen;
  if (construction == RsConstruction::kVandermonde) {
    gen = GfMatrix::vandermonde(k + m, k);
    Status st = gen.make_systematic();
    if (!st.ok()) return st;
  } else {
    // Systematic Cauchy: identity on top, Cauchy block below.
    gen = GfMatrix(k + m, k);
    for (std::size_t i = 0; i < k; ++i) gen.at(i, i) = 1;
    GfMatrix cauchy = GfMatrix::cauchy(m, k);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < k; ++c) {
        gen.at(k + r, c) = cauchy.at(r, c);
      }
    }
  }
  return std::unique_ptr<Codec>(new ReedSolomonCodec(
      k, m, std::move(gen), construction));
}

std::unique_ptr<Codec> make_xor(std::size_t k) {
  assert(k >= 1);
  return std::make_unique<XorCodec>(k);
}

}  // namespace corec::erasure
