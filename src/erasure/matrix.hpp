// Dense matrices over GF(2^8) and the linear algebra needed by
// Reed-Solomon erasure decoding (inversion via Gauss-Jordan).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.hpp"

namespace corec::erasure {

/// Row-major dense matrix over GF(2^8).
class GfMatrix {
 public:
  GfMatrix() = default;
  /// Zero-initialized rows x cols matrix.
  GfMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  /// Identity matrix of order n.
  static GfMatrix identity(std::size_t n);

  /// Vandermonde matrix V[i][j] = alpha^(i*j) with rows x cols entries.
  /// Rows beyond the first `cols` give independent parity equations.
  static GfMatrix vandermonde(std::size_t rows, std::size_t cols);

  /// Cauchy matrix C[i][j] = 1 / (x_i + y_j) with x_i = i + cols,
  /// y_j = j; any square submatrix is invertible, which makes it a
  /// correct RS generator without the Vandermonde row-reduction step.
  static GfMatrix cauchy(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  std::uint8_t& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  std::uint8_t at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r (contiguous `cols()` bytes).
  const std::uint8_t* row(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  /// Matrix product this * other. Precondition: cols() == other.rows().
  GfMatrix multiply(const GfMatrix& other) const;

  /// Returns the inverse, or FailedPrecondition if singular.
  /// Precondition: square.
  StatusOr<GfMatrix> inverted() const;

  /// Extracts the sub-matrix made of the given rows (all columns).
  GfMatrix select_rows(const std::vector<std::size_t>& row_idx) const;

  /// Rank via Gaussian elimination (destructive on a copy).
  std::size_t rank() const;

  /// In-place elementary row ops used by systematic-form reduction.
  void scale_row(std::size_t r, std::uint8_t c);
  void add_scaled_row(std::size_t dst, std::size_t src, std::uint8_t c);
  void swap_rows(std::size_t a, std::size_t b);

  /// Reduces the top cols() x cols() block to identity via column
  /// operations mirrored across all rows, producing a systematic
  /// generator (top = I, bottom = parity coefficients). Returns
  /// FailedPrecondition if the top block is singular.
  Status make_systematic();

  friend bool operator==(const GfMatrix& a, const GfMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> data_;
};

}  // namespace corec::erasure
