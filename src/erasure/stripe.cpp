#include "erasure/stripe.hpp"

#include <algorithm>

namespace corec::erasure {

StatusOr<Stripe> build_stripe(const Codec& codec,
                              const std::vector<ByteSpan>& payloads,
                              std::size_t min_block_size) {
  if (payloads.size() > codec.k()) {
    return Status::InvalidArgument("more payloads than data blocks");
  }
  Stripe stripe;
  stripe.block_size = min_block_size;
  for (const auto& p : payloads) {
    stripe.block_size = std::max(stripe.block_size, p.size());
  }
  if (stripe.block_size == 0) stripe.block_size = 1;  // degenerate stripe

  stripe.blocks.assign(codec.n(), Bytes(stripe.block_size, 0));
  stripe.payload_sizes.assign(codec.k(), 0);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    std::copy(payloads[i].begin(), payloads[i].end(),
              stripe.blocks[i].begin());
    stripe.payload_sizes[i] = payloads[i].size();
  }
  COREC_RETURN_IF_ERROR(reencode_parity(codec, &stripe));
  return stripe;
}

Status reencode_parity(const Codec& codec, Stripe* stripe) {
  std::vector<ByteSpan> data;
  std::vector<MutableByteSpan> parity;
  data.reserve(codec.k());
  parity.reserve(codec.m());
  for (std::size_t i = 0; i < codec.k(); ++i) {
    data.emplace_back(stripe->blocks[i]);
  }
  for (std::size_t i = codec.k(); i < codec.n(); ++i) {
    parity.emplace_back(stripe->blocks[i]);
  }
  return codec.encode(data, parity);
}

Status repair_stripe(const Codec& codec, Stripe* stripe,
                     const std::vector<std::size_t>& erased) {
  std::vector<MutableByteSpan> blocks;
  blocks.reserve(stripe->blocks.size());
  for (auto& b : stripe->blocks) blocks.emplace_back(b);
  return codec.decode(blocks, erased);
}

StatusOr<Bytes> extract_payload(const Stripe& stripe, std::size_t i) {
  if (i >= stripe.payload_sizes.size()) {
    return Status::InvalidArgument("payload index out of range");
  }
  const Bytes& block = stripe.blocks[i];
  std::size_t size = stripe.payload_sizes[i];
  if (size > block.size()) {
    return Status::Internal("payload size exceeds block size");
  }
  return Bytes(block.begin(),
               block.begin() + static_cast<std::ptrdiff_t>(size));
}

}  // namespace corec::erasure
