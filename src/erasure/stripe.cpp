#include "erasure/stripe.hpp"

#include <algorithm>

#include "common/checksum.hpp"

namespace corec::erasure {

StatusOr<Stripe> build_stripe(const Codec& codec,
                              const std::vector<ByteSpan>& payloads,
                              std::size_t min_block_size) {
  if (payloads.size() > codec.k()) {
    return Status::InvalidArgument("more payloads than data blocks");
  }
  Stripe stripe;
  stripe.block_size = min_block_size;
  for (const auto& p : payloads) {
    stripe.block_size = std::max(stripe.block_size, p.size());
  }
  if (stripe.block_size == 0) stripe.block_size = 1;  // degenerate stripe

  stripe.blocks.assign(codec.n(), Bytes(stripe.block_size, 0));
  stripe.payload_sizes.assign(codec.k(), 0);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    std::copy(payloads[i].begin(), payloads[i].end(),
              stripe.blocks[i].begin());
    stripe.payload_sizes[i] = payloads[i].size();
  }
  COREC_RETURN_IF_ERROR(reencode_parity(codec, &stripe));
  checksum_stripe(&stripe);
  return stripe;
}

Status reencode_parity(const Codec& codec, Stripe* stripe) {
  std::vector<ByteSpan> data;
  std::vector<MutableByteSpan> parity;
  data.reserve(codec.k());
  parity.reserve(codec.m());
  for (std::size_t i = 0; i < codec.k(); ++i) {
    data.emplace_back(stripe->blocks[i]);
  }
  for (std::size_t i = codec.k(); i < codec.n(); ++i) {
    parity.emplace_back(stripe->blocks[i]);
  }
  return codec.encode(data, parity);
}

Status repair_stripe(const Codec& codec, Stripe* stripe,
                     const std::vector<std::size_t>& erased) {
  std::vector<MutableByteSpan> blocks;
  blocks.reserve(stripe->blocks.size());
  for (auto& b : stripe->blocks) blocks.emplace_back(b);
  return codec.decode(blocks, erased);
}

void checksum_stripe(Stripe* stripe) {
  stripe->block_checksums.resize(stripe->blocks.size());
  for (std::size_t i = 0; i < stripe->blocks.size(); ++i) {
    stripe->block_checksums[i] = crc32c(stripe->blocks[i]);
  }
}

std::vector<std::size_t> verify_stripe(const Stripe& stripe) {
  std::vector<std::size_t> bad;
  for (std::size_t i = 0; i < stripe.blocks.size(); ++i) {
    std::uint32_t expected = i < stripe.block_checksums.size()
                                 ? stripe.block_checksums[i]
                                 : 0;
    if (crc32c(stripe.blocks[i]) != expected) bad.push_back(i);
  }
  return bad;
}

Status repair_stripe_verified(const Codec& codec, Stripe* stripe,
                              std::vector<std::size_t> erased) {
  // Corrupt blocks join the erasure set: their bytes are untrustworthy,
  // so they are zeroed and reconstructed exactly like lost ones.
  for (std::size_t bad : verify_stripe(*stripe)) {
    if (std::find(erased.begin(), erased.end(), bad) == erased.end()) {
      erased.push_back(bad);
    }
  }
  std::sort(erased.begin(), erased.end());
  for (std::size_t e : erased) {
    if (e < stripe->blocks.size()) {
      std::fill(stripe->blocks[e].begin(), stripe->blocks[e].end(), 0);
    }
  }
  COREC_RETURN_IF_ERROR(repair_stripe(codec, stripe, erased));
  checksum_stripe(stripe);
  return Status::Ok();
}

StatusOr<Bytes> extract_payload(const Stripe& stripe, std::size_t i) {
  if (i >= stripe.payload_sizes.size()) {
    return Status::InvalidArgument("payload index out of range");
  }
  const Bytes& block = stripe.blocks[i];
  std::size_t size = stripe.payload_sizes[i];
  if (size > block.size()) {
    return Status::Internal("payload size exceeds block size");
  }
  return Bytes(block.begin(),
               block.begin() + static_cast<std::ptrdiff_t>(size));
}

}  // namespace corec::erasure
