// Wire/persistence serialization for staging metadata: descriptors,
// locations, and whole directory snapshots. Used to checkpoint the
// metadata service alongside data (the restart path needs both) and to
// ship directory state to replacement metadata servers.
#pragma once

#include "common/buffer.hpp"
#include "common/status.hpp"
#include "staging/directory.hpp"
#include "staging/object.hpp"

namespace corec::staging {

/// Appends `box` to `w` (dimension count + corner coordinates).
void encode_box(const geom::BoundingBox& box, BufferWriter* w);
/// Decodes a box previously written by encode_box.
StatusOr<geom::BoundingBox> decode_box(BufferReader* r);

/// Appends a descriptor (var, version, shard, box).
void encode_descriptor(const ObjectDescriptor& desc, BufferWriter* w);
StatusOr<ObjectDescriptor> decode_descriptor(BufferReader* r);

/// Appends a full placement record.
void encode_location(const ObjectLocation& loc, BufferWriter* w);
StatusOr<ObjectLocation> decode_location(BufferReader* r);

/// Serializes every (descriptor, location) pair of a directory.
Bytes snapshot_directory(const Directory& dir);

/// Rebuilds a directory from a snapshot (into an empty directory).
Status restore_directory(ByteSpan snapshot, Directory* dir);

}  // namespace corec::staging
