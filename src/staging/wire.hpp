// Wire/persistence serialization for staging metadata: descriptors,
// locations, whole directory snapshots, and the replicated-metadata
// op-log records. Used to checkpoint the metadata service alongside data
// (the restart path needs both), to ship directory state to replacement
// metadata servers, and to stream mutations from the metadata primary to
// its follower replicas (src/meta/).
#pragma once

#include "common/buffer.hpp"
#include "common/status.hpp"
#include "staging/directory.hpp"
#include "staging/object.hpp"

namespace corec::staging {

/// Appends `box` to `w` (dimension count + corner coordinates).
void encode_box(const geom::BoundingBox& box, BufferWriter* w);
/// Decodes a box previously written by encode_box.
StatusOr<geom::BoundingBox> decode_box(BufferReader* r);

/// Appends a descriptor (var, version, shard, box).
void encode_descriptor(const ObjectDescriptor& desc, BufferWriter* w);
StatusOr<ObjectDescriptor> decode_descriptor(BufferReader* r);

/// Appends a full placement record.
void encode_location(const ObjectLocation& loc, BufferWriter* w);
StatusOr<ObjectLocation> decode_location(BufferReader* r);

/// Exact encoded sizes of the records above. Encoders that batch many
/// records (snapshots, op-log shipping) reserve the full output once
/// instead of growing the buffer per field.
std::size_t encoded_box_size(const geom::BoundingBox& box);
std::size_t encoded_descriptor_size(const ObjectDescriptor& desc);
std::size_t encoded_location_size(const ObjectLocation& loc);

/// Strict weak order over descriptors (var, version, shard, box). Used
/// to canonicalize snapshots so equal directory contents always produce
/// identical bytes, whatever the mutation history.
bool descriptor_less(const ObjectDescriptor& a, const ObjectDescriptor& b);

/// Serializes every (descriptor, location) pair of a directory, in
/// canonical (descriptor_less) order: two directories with equal
/// contents snapshot to byte-identical buffers.
Bytes snapshot_directory(const Directory& dir);

/// Rebuilds a directory from a snapshot (into an empty directory).
/// Snapshots naming the same descriptor twice are rejected with a
/// "duplicate descriptor" InvalidArgument instead of silently keeping
/// the last occurrence.
Status restore_directory(ByteSpan snapshot, Directory* dir);

// ---- replicated-metadata op-log records (src/meta/) ----------------------

/// Kind tag of one op-log record.
enum class MetaOpKind : std::uint8_t {
  kUpsert = 0,
  kRemove = 1,
  /// Membership transition: the record carries a full serialized pool
  /// map (membership::PoolMap); replicas retain the newest version.
  kMapTransition = 2,
};

/// One op-log record: a single directory mutation plus the sequence
/// number the metadata primary assigned to it.
struct OpRecord {
  std::uint64_t seq = 0;
  MetaOpKind kind = MetaOpKind::kUpsert;
  ObjectDescriptor desc;
  ObjectLocation loc;         // meaningful for kUpsert only
  Bytes map_blob;             // meaningful for kMapTransition only
  std::uint64_t map_version = 0;  // ditto
};

/// Appends one op-log record (seq, kind, descriptor, and for upserts the
/// location).
void encode_op_record(const OpRecord& op, BufferWriter* w);
StatusOr<OpRecord> decode_op_record(BufferReader* r);

/// Applies one op-log record to a directory (log replay).
void apply_op_record(const OpRecord& op, Directory* dir);

}  // namespace corec::staging
