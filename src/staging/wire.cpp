#include "staging/wire.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace corec::staging {
namespace {

// Snapshot format versioning: bump when the record layout changes.
constexpr std::uint32_t kSnapshotMagic = 0xC0DEC001;

}  // namespace

void encode_box(const geom::BoundingBox& box, BufferWriter* w) {
  w->put<std::uint8_t>(static_cast<std::uint8_t>(box.dims()));
  for (std::size_t d = 0; d < box.dims(); ++d) {
    w->put<std::int64_t>(box.lo()[d]);
    w->put<std::int64_t>(box.hi()[d]);
  }
}

StatusOr<geom::BoundingBox> decode_box(BufferReader* r) {
  std::uint8_t dims = 0;
  COREC_RETURN_IF_ERROR(r->get(&dims));
  if (dims > geom::kMaxDims) {
    return Status::InvalidArgument("box dims out of range");
  }
  geom::Point lo, hi;
  lo.dims = hi.dims = dims;
  for (std::size_t d = 0; d < dims; ++d) {
    std::int64_t a = 0, b = 0;
    COREC_RETURN_IF_ERROR(r->get(&a));
    COREC_RETURN_IF_ERROR(r->get(&b));
    if (a > b) return Status::InvalidArgument("box corners inverted");
    lo[d] = a;
    hi[d] = b;
  }
  return geom::BoundingBox(lo, hi);
}

void encode_descriptor(const ObjectDescriptor& desc, BufferWriter* w) {
  w->put<VarId>(desc.var);
  w->put<Version>(desc.version);
  w->put<ShardIndex>(desc.shard);
  encode_box(desc.box, w);
}

StatusOr<ObjectDescriptor> decode_descriptor(BufferReader* r) {
  ObjectDescriptor desc;
  COREC_RETURN_IF_ERROR(r->get(&desc.var));
  COREC_RETURN_IF_ERROR(r->get(&desc.version));
  COREC_RETURN_IF_ERROR(r->get(&desc.shard));
  COREC_ASSIGN_OR_RETURN(desc.box, decode_box(r));
  return desc;
}

void encode_location(const ObjectLocation& loc, BufferWriter* w) {
  w->put<ServerId>(loc.primary);
  w->put<std::uint8_t>(static_cast<std::uint8_t>(loc.protection));
  w->put<std::uint32_t>(static_cast<std::uint32_t>(loc.replicas.size()));
  for (ServerId s : loc.replicas) w->put<ServerId>(s);
  w->put<std::uint32_t>(
      static_cast<std::uint32_t>(loc.stripe_servers.size()));
  for (ServerId s : loc.stripe_servers) w->put<ServerId>(s);
  w->put<std::uint32_t>(loc.k);
  w->put<std::uint32_t>(loc.m);
  w->put<std::uint64_t>(loc.chunk_size);
  w->put<std::uint64_t>(loc.logical_size);
  w->put<std::uint32_t>(loc.object_checksum);
  w->put<std::uint32_t>(
      static_cast<std::uint32_t>(loc.shard_checksums.size()));
  for (std::uint32_t c : loc.shard_checksums) w->put<std::uint32_t>(c);
}

StatusOr<ObjectLocation> decode_location(BufferReader* r) {
  ObjectLocation loc;
  COREC_RETURN_IF_ERROR(r->get(&loc.primary));
  std::uint8_t protection = 0;
  COREC_RETURN_IF_ERROR(r->get(&protection));
  if (protection > static_cast<std::uint8_t>(Protection::kEncoded)) {
    return Status::InvalidArgument("bad protection tag");
  }
  loc.protection = static_cast<Protection>(protection);
  std::uint32_t n = 0;
  COREC_RETURN_IF_ERROR(r->get(&n));
  // Bound the count by the bytes actually present so corrupt or hostile
  // length fields can neither over-allocate nor walk past the buffer.
  if (n > 1u << 20 || n > r->remaining() / sizeof(ServerId)) {
    return Status::InvalidArgument("replica count exceeds buffer");
  }
  loc.replicas.resize(n);
  for (auto& s : loc.replicas) COREC_RETURN_IF_ERROR(r->get(&s));
  COREC_RETURN_IF_ERROR(r->get(&n));
  if (n > 1u << 20 || n > r->remaining() / sizeof(ServerId)) {
    return Status::InvalidArgument("stripe width exceeds buffer");
  }
  loc.stripe_servers.resize(n);
  for (auto& s : loc.stripe_servers) COREC_RETURN_IF_ERROR(r->get(&s));
  COREC_RETURN_IF_ERROR(r->get(&loc.k));
  COREC_RETURN_IF_ERROR(r->get(&loc.m));
  std::uint64_t chunk = 0, logical = 0;
  COREC_RETURN_IF_ERROR(r->get(&chunk));
  COREC_RETURN_IF_ERROR(r->get(&logical));
  loc.chunk_size = chunk;
  loc.logical_size = logical;
  COREC_RETURN_IF_ERROR(r->get(&loc.object_checksum));
  COREC_RETURN_IF_ERROR(r->get(&n));
  if (n > 1u << 20 || n > r->remaining() / sizeof(std::uint32_t)) {
    return Status::InvalidArgument("shard checksum count exceeds buffer");
  }
  loc.shard_checksums.resize(n);
  for (auto& c : loc.shard_checksums) COREC_RETURN_IF_ERROR(r->get(&c));
  return loc;
}

std::size_t encoded_box_size(const geom::BoundingBox& box) {
  return sizeof(std::uint8_t) + box.dims() * 2 * sizeof(std::int64_t);
}

std::size_t encoded_descriptor_size(const ObjectDescriptor& desc) {
  return sizeof(VarId) + sizeof(Version) + sizeof(ShardIndex) +
         encoded_box_size(desc.box);
}

std::size_t encoded_location_size(const ObjectLocation& loc) {
  return sizeof(ServerId) + sizeof(std::uint8_t) +
         sizeof(std::uint32_t) + loc.replicas.size() * sizeof(ServerId) +
         sizeof(std::uint32_t) +
         loc.stripe_servers.size() * sizeof(ServerId) +
         2 * sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t) +
         2 * sizeof(std::uint32_t) +
         loc.shard_checksums.size() * sizeof(std::uint32_t);
}

bool descriptor_less(const ObjectDescriptor& a, const ObjectDescriptor& b) {
  if (a.var != b.var) return a.var < b.var;
  if (a.version != b.version) return a.version < b.version;
  if (a.shard != b.shard) return a.shard < b.shard;
  if (a.box.dims() != b.box.dims()) return a.box.dims() < b.box.dims();
  for (std::size_t d = 0; d < a.box.dims(); ++d) {
    if (a.box.lo()[d] != b.box.lo()[d]) return a.box.lo()[d] < b.box.lo()[d];
    if (a.box.hi()[d] != b.box.hi()[d]) return a.box.hi()[d] < b.box.hi()[d];
  }
  return false;
}

Bytes snapshot_directory(const Directory& dir) {
  // Canonical order: equal contents => identical bytes, no matter how
  // the directory got there (live mutations vs snapshot + log replay).
  std::vector<std::pair<ObjectDescriptor, const ObjectLocation*>> entries;
  entries.reserve(dir.size());
  dir.for_each([&entries](const ObjectDescriptor& desc,
                          const ObjectLocation& loc) {
    entries.emplace_back(desc, &loc);
  });
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return descriptor_less(a.first, b.first);
            });

  Bytes out;
  BufferWriter w(&out);
  // The snapshot's exact size is known up front; one reservation
  // instead of O(entries * fields) grow-and-copy cycles.
  std::size_t total = sizeof(std::uint32_t) + sizeof(std::uint64_t);
  for (const auto& [desc, loc] : entries) {
    total += encoded_descriptor_size(desc) + encoded_location_size(*loc);
  }
  w.reserve(total);
  w.put<std::uint32_t>(kSnapshotMagic);
  w.put<std::uint64_t>(entries.size());
  for (const auto& [desc, loc] : entries) {
    encode_descriptor(desc, &w);
    encode_location(*loc, &w);
  }
  return out;
}

Status restore_directory(ByteSpan snapshot, Directory* dir) {
  BufferReader r(snapshot);
  std::uint32_t magic = 0;
  COREC_RETURN_IF_ERROR(r.get(&magic));
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a directory snapshot");
  }
  std::uint64_t count = 0;
  COREC_RETURN_IF_ERROR(r.get(&count));
  // Every record is dozens of bytes; a count beyond the remaining byte
  // count is corrupt for sure — fail before looping on it.
  if (count > r.remaining()) {
    return Status::InvalidArgument("snapshot count exceeds buffer");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    COREC_ASSIGN_OR_RETURN(ObjectDescriptor desc, decode_descriptor(&r));
    COREC_ASSIGN_OR_RETURN(ObjectLocation loc, decode_location(&r));
    if (dir->find(desc) != nullptr) {
      return Status::InvalidArgument("duplicate descriptor in snapshot: " +
                                     desc.to_string());
    }
    dir->upsert(desc, std::move(loc));
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in snapshot");
  }
  return Status::Ok();
}

void encode_op_record(const OpRecord& op, BufferWriter* w) {
  w->put<std::uint64_t>(op.seq);
  w->put<std::uint8_t>(static_cast<std::uint8_t>(op.kind));
  encode_descriptor(op.desc, w);
  if (op.kind == MetaOpKind::kUpsert) {
    encode_location(op.loc, w);
  } else if (op.kind == MetaOpKind::kMapTransition) {
    w->put<std::uint64_t>(op.map_version);
    w->put_bytes(ByteSpan(op.map_blob.data(), op.map_blob.size()));
  }
}

StatusOr<OpRecord> decode_op_record(BufferReader* r) {
  OpRecord op;
  COREC_RETURN_IF_ERROR(r->get(&op.seq));
  std::uint8_t kind = 0;
  COREC_RETURN_IF_ERROR(r->get(&kind));
  if (kind > static_cast<std::uint8_t>(MetaOpKind::kMapTransition)) {
    return Status::InvalidArgument("bad op-log record kind");
  }
  op.kind = static_cast<MetaOpKind>(kind);
  COREC_ASSIGN_OR_RETURN(op.desc, decode_descriptor(r));
  if (op.kind == MetaOpKind::kUpsert) {
    COREC_ASSIGN_OR_RETURN(op.loc, decode_location(r));
  } else if (op.kind == MetaOpKind::kMapTransition) {
    COREC_RETURN_IF_ERROR(r->get(&op.map_version));
    COREC_RETURN_IF_ERROR(r->get_bytes(&op.map_blob));
  }
  return op;
}

void apply_op_record(const OpRecord& op, Directory* dir) {
  if (op.kind == MetaOpKind::kUpsert) {
    dir->upsert(op.desc, op.loc);
  } else if (op.kind == MetaOpKind::kRemove) {
    dir->remove(op.desc);
  }
  // kMapTransition carries no directory mutation: replay leaves the
  // directory untouched and the retained map is handled by the replica.
}

}  // namespace corec::staging
