// Request-level timing metrics. Every client operation returns its
// virtual-time response plus a breakdown matching the categories of the
// paper's Figure 9 (transport / metadata / encode / classify), with
// queueing and decode tracked separately for the recovery figures.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "common/types.hpp"

namespace corec::staging {

/// Per-operation cost attribution, in virtual nanoseconds. Categories
/// sum work *charged by this operation*, not wall-span; response time
/// (completed - issued) additionally includes queueing behind others.
struct Breakdown {
  SimTime transport = 0;  // link latency + serialization time
  SimTime metadata = 0;   // directory lookups/updates
  SimTime encode = 0;     // parity computation (RS encode)
  SimTime decode = 0;     // degraded-read/rebuild reconstruction
  SimTime classify = 0;   // hot/cold classification decisions
  SimTime copy = 0;       // local memory copies / server overhead

  SimTime total() const {
    return transport + metadata + encode + decode + classify + copy;
  }

  Breakdown& operator+=(const Breakdown& o) {
    transport += o.transport;
    metadata += o.metadata;
    encode += o.encode;
    decode += o.decode;
    classify += o.classify;
    copy += o.copy;
    return *this;
  }
};

/// Outcome of one put/get.
struct OpResult {
  Status status;
  SimTime issued = 0;     // virtual time the client issued the request
  SimTime completed = 0;  // virtual time the client saw completion
  Breakdown breakdown;

  SimTime response_time() const { return completed - issued; }
};

}  // namespace corec::staging
