#include "staging/sharded_store.hpp"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

namespace corec::staging {

namespace {

// Relaxed high-water-mark update (metrics only; no ordering needed).
void bump_max(std::atomic<std::uint64_t>* max, std::uint64_t observed) {
  std::uint64_t cur = max->load(std::memory_order_relaxed);
  while (observed > cur &&
         !max->compare_exchange_weak(cur, observed,
                                     std::memory_order_relaxed)) {
  }
}

// Deterministic descriptor order for merged query results: newest
// version first, then a total order over the identifying fields so the
// merged output is independent of shard interleaving.
bool newest_first(const ObjectDescriptor& a, const ObjectDescriptor& b) {
  if (a.version != b.version) return a.version > b.version;
  if (a.var != b.var) return a.var < b.var;
  if (a.shard != b.shard) return a.shard < b.shard;
  const std::size_t dims = std::min(a.box.dims(), b.box.dims());
  for (std::size_t d = 0; d < dims; ++d) {
    if (a.box.lo()[d] != b.box.lo()[d]) return a.box.lo()[d] < b.box.lo()[d];
    if (a.box.hi()[d] != b.box.hi()[d]) return a.box.hi()[d] < b.box.hi()[d];
  }
  return a.box.dims() < b.box.dims();
}

}  // namespace

// ---- ShardedObjectStore ----------------------------------------------------

ShardedObjectStore::ShardedObjectStore(std::size_t capacity_bytes,
                                       std::size_t shards)
    : capacity_(capacity_bytes),
      mask_(resolve_shard_count(shards) - 1),
      shards_(std::make_unique<Shard[]>(resolve_shard_count(shards))),
      num_shards_(resolve_shard_count(shards)),
      count_(num_shards_),
      bytes_(num_shards_),
      kind_bytes_{StripedCounter(num_shards_), StripedCounter(num_shards_),
                  StripedCounter(num_shards_), StripedCounter(num_shards_)},
      metrics_registration_([this] { return shard_metrics(); }) {}

Status ShardedObjectStore::put(DataObject object, StoredKind kind) {
  const std::size_t idx = shard_index(object.desc);
  Shard& sh = shards_[idx];
  const std::size_t new_bytes = object.logical_size;
  std::unique_lock lock(sh.mutex);
  const StoredObject* existing = sh.store.find(object.desc);
  const std::size_t replaced =
      existing == nullptr ? 0 : existing->object.logical_size;
  if (capacity_ != 0 &&
      total_bytes() - replaced + new_bytes > capacity_) {
    return Status::ResourceExhausted("sharded store over capacity");
  }
  const StoredKind old_kind = existing == nullptr ? kind : existing->kind;
  Status st = sh.store.put(std::move(object), kind);
  if (!st.ok()) return st;
  const auto delta = static_cast<std::int64_t>(new_bytes) -
                     static_cast<std::int64_t>(replaced);
  bytes_.add(idx, delta);
  if (old_kind == kind) {
    // Same-kind overwrite (the steady-state path): one rollup update,
    // zero when the payload size is unchanged.
    kind_bytes_[static_cast<std::size_t>(kind)].add(idx, delta);
  } else {
    kind_bytes_[static_cast<std::size_t>(old_kind)].add(
        idx, -static_cast<std::int64_t>(replaced));
    kind_bytes_[static_cast<std::size_t>(kind)].add(
        idx, static_cast<std::int64_t>(new_bytes));
  }
  if (existing == nullptr) {
    count_.add(idx, 1);
    // Occupancy only grows on insert, never on overwrite.
    bump_max(&max_occupancy_, sh.store.count());
  }
  return Status::Ok();
}

StatusOr<StoredObject> ShardedObjectStore::get(
    const ObjectDescriptor& desc) const {
  const Shard& sh = shards_[shard_index(desc)];
  std::shared_lock lock(sh.mutex);
  const StoredObject* found = sh.store.find(desc);
  if (found == nullptr) {
    return Status::NotFound("object not stored: " + desc.to_string());
  }
  // Copying the entry bumps the payload refcount — no byte copy. The
  // view stays valid after the lock drops because mutators detach via
  // copy-on-write instead of writing through shared backing stores.
  return *found;
}

bool ShardedObjectStore::erase(const ObjectDescriptor& desc) {
  const std::size_t idx = shard_index(desc);
  Shard& sh = shards_[idx];
  std::unique_lock lock(sh.mutex);
  const StoredObject* existing = sh.store.find(desc);
  if (existing == nullptr) return false;
  const std::size_t bytes = existing->object.logical_size;
  const StoredKind kind = existing->kind;
  sh.store.erase(desc);
  count_.add(idx, -1);
  bytes_.add(idx, -static_cast<std::int64_t>(bytes));
  kind_bytes_[static_cast<std::size_t>(kind)].add(
      idx, -static_cast<std::int64_t>(bytes));
  return true;
}

bool ShardedObjectStore::contains(const ObjectDescriptor& desc) const {
  const Shard& sh = shards_[shard_index(desc)];
  std::shared_lock lock(sh.mutex);
  return sh.store.contains(desc);
}

bool ShardedObjectStore::flip_byte(const ObjectDescriptor& desc,
                                   std::size_t offset) {
  Shard& sh = shards_[shard_index(desc)];
  std::unique_lock lock(sh.mutex);
  return sh.store.flip_byte(desc, offset);
}

void ShardedObjectStore::clear() {
  for (std::size_t i = 0; i < num_shards_; ++i) {
    Shard& sh = shards_[i];
    std::unique_lock lock(sh.mutex);
    sh.store.clear();
  }
  count_.reset();
  bytes_.reset();
  for (auto& kb : kind_bytes_) kb.reset();
}

std::size_t ShardedObjectStore::count() const {
  return static_cast<std::size_t>(std::max<std::int64_t>(0, count_.value()));
}

std::size_t ShardedObjectStore::total_bytes() const {
  return static_cast<std::size_t>(std::max<std::int64_t>(0, bytes_.value()));
}

std::size_t ShardedObjectStore::bytes_of(StoredKind kind) const {
  return static_cast<std::size_t>(std::max<std::int64_t>(
      0, kind_bytes_[static_cast<std::size_t>(kind)].value()));
}

void ShardedObjectStore::for_each(
    const std::function<void(const StoredObject&)>& fn) const {
  for (std::size_t i = 0; i < num_shards_; ++i) {
    const Shard& sh = shards_[i];
    std::shared_lock lock(sh.mutex);
    sh.store.for_each(fn);
  }
}

ShardMetricsSnapshot ShardedObjectStore::shard_metrics() const {
  ShardMetricsSnapshot snap;
  snap.shards = num_shards_;
  for (std::size_t i = 0; i < num_shards_; ++i) {
    snap.lock_acquisitions += shards_[i].mutex.acquisitions();
    snap.contended_acquisitions += shards_[i].mutex.contended();
  }
  snap.max_shard_occupancy =
      max_occupancy_.load(std::memory_order_relaxed);
  return snap;
}

// ---- ShardedDirectory ------------------------------------------------------

ShardedDirectory::ShardedDirectory(std::size_t shards)
    : mask_(resolve_shard_count(shards) - 1),
      shards_(std::make_unique<Shard[]>(resolve_shard_count(shards))),
      num_shards_(resolve_shard_count(shards)),
      size_(num_shards_),
      metrics_registration_([this] { return shard_metrics(); }) {}

std::size_t ShardedDirectory::shard_index(
    VarId var, const geom::BoundingBox& box) const {
  // Entity key: version and shard index stripped, so every version of
  // one (var, box) entity lands on the same shard.
  return DescriptorHash{}(ObjectDescriptor{var, 0, box, kWholeObject}) &
         mask_;
}

void ShardedDirectory::upsert(const ObjectDescriptor& desc,
                              ObjectLocation location) {
  const std::size_t idx = shard_index(desc.var, desc.box);
  Shard& sh = shards_[idx];
  std::unique_lock lock(sh.mutex);
  const std::size_t before = sh.dir.size();
  sh.dir.upsert(desc, std::move(location));
  size_.add(idx, static_cast<std::int64_t>(sh.dir.size()) -
                     static_cast<std::int64_t>(before));
  bump_max(&max_occupancy_, sh.dir.size());
}

bool ShardedDirectory::remove(const ObjectDescriptor& desc) {
  const std::size_t idx = shard_index(desc.var, desc.box);
  Shard& sh = shards_[idx];
  std::unique_lock lock(sh.mutex);
  if (!sh.dir.remove(desc)) return false;
  size_.add(idx, -1);
  return true;
}

StatusOr<ObjectLocation> ShardedDirectory::find(
    const ObjectDescriptor& desc) const {
  const Shard& sh = shards_[shard_index(desc.var, desc.box)];
  std::shared_lock lock(sh.mutex);
  const ObjectLocation* loc = sh.dir.find(desc);
  if (loc == nullptr) {
    return Status::NotFound("not registered: " + desc.to_string());
  }
  return *loc;
}

std::vector<ObjectDescriptor> ShardedDirectory::query(
    VarId var, Version version, const geom::BoundingBox& region) const {
  std::vector<ObjectDescriptor> out;
  for (std::size_t i = 0; i < num_shards_; ++i) {
    const Shard& sh = shards_[i];
    std::shared_lock lock(sh.mutex);
    auto part = sh.dir.query(var, version, region);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end(), newest_first);
  return out;
}

std::vector<ObjectDescriptor> ShardedDirectory::query_latest(
    VarId var, Version version, const geom::BoundingBox& region) const {
  // Pass 1: each shard runs the exact shadow test over the entities it
  // owns. A shard keeps at least everything the monolithic directory
  // would (its uncovered region only shrinks by same-shard boxes), so
  // the union is a superset of the monolithic answer.
  std::vector<ObjectDescriptor> candidates;
  for (std::size_t i = 0; i < num_shards_; ++i) {
    const Shard& sh = shards_[i];
    std::shared_lock lock(sh.mutex);
    auto part = sh.dir.query_latest(var, version, region);
    candidates.insert(candidates.end(), part.begin(), part.end());
  }
  if (num_shards_ == 1) return candidates;

  // Pass 2: global shadow test newest-first over the merged candidates
  // (same algorithm and fragmentation cap as Directory::query_latest).
  std::sort(candidates.begin(), candidates.end(), newest_first);
  constexpr std::size_t kFragmentCap = 64;
  std::vector<ObjectDescriptor> out;
  std::vector<geom::BoundingBox> uncovered{region};
  bool exact = true;
  for (const auto& desc : candidates) {
    if (!exact) {
      out.push_back(desc);
      continue;
    }
    if (uncovered.empty()) break;
    bool hit = false;
    for (const auto& piece : uncovered) {
      if (desc.box.intersects(piece)) {
        hit = true;
        break;
      }
    }
    if (!hit) continue;
    out.push_back(desc);
    std::vector<geom::BoundingBox> next;
    for (const auto& piece : uncovered) {
      piece.subtract(desc.box, &next);
    }
    uncovered = std::move(next);
    if (uncovered.size() > kFragmentCap) exact = false;
  }
  return out;
}

StatusOr<ObjectDescriptor> ShardedDirectory::find_entity(
    VarId var, const geom::BoundingBox& box) const {
  const Shard& sh = shards_[shard_index(var, box)];
  std::shared_lock lock(sh.mutex);
  const ObjectDescriptor* desc = sh.dir.find_entity(var, box);
  if (desc == nullptr) return Status::NotFound("no live entity");
  return *desc;
}

std::size_t ShardedDirectory::size() const {
  return static_cast<std::size_t>(std::max<std::int64_t>(0, size_.value()));
}

void ShardedDirectory::for_each(
    const std::function<void(const ObjectDescriptor&,
                             const ObjectLocation&)>& fn) const {
  for (std::size_t i = 0; i < num_shards_; ++i) {
    const Shard& sh = shards_[i];
    std::shared_lock lock(sh.mutex);
    sh.dir.for_each(fn);
  }
}

ShardMetricsSnapshot ShardedDirectory::shard_metrics() const {
  ShardMetricsSnapshot snap;
  snap.shards = num_shards_;
  for (std::size_t i = 0; i < num_shards_; ++i) {
    snap.lock_acquisitions += shards_[i].mutex.acquisitions();
    snap.contended_acquisitions += shards_[i].mutex.contended();
  }
  snap.max_shard_occupancy =
      max_occupancy_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace corec::staging
