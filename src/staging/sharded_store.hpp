// Sharded, lock-striped concurrent staging data plane. Replaces the
// monolithic single-shared_mutex ConcurrentStore/ConcurrentDirectory
// for real-thread deployments:
//
//   * ShardedObjectStore — N-way hash-sharded ObjectStores, one
//     instrumented shared_mutex per shard. Operations on different
//     shards never contend; count()/total_bytes() read striped relaxed
//     atomics and never take a lock.
//   * ShardedDirectory — the metadata directory sharded by *entity*
//     (var, box), so every version of one region entity colocates and
//     per-shard latest-version semantics stay exact.
//
// Reads are zero-copy: get() returns the stored entry whose payload is
// a refcounted PayloadBuffer view. Escaped views are safe because every
// mutation path (flip_byte fault injection, overwriting puts) goes
// through PayloadBuffer's copy-on-write detach — a reader that left the
// lock with a view can never observe a later mutation.
#pragma once

#include <memory>
#include <vector>

#include "common/sharding.hpp"
#include "common/status.hpp"
#include "staging/directory.hpp"
#include "staging/object_store.hpp"

namespace corec::staging {

/// N-way sharded object store. Thread-safe; per-shard shared_mutex.
class ShardedObjectStore {
 public:
  /// `capacity_bytes` of 0 means unlimited (enforced across all shards
  /// together). `shards` of 0 picks default_shard_count().
  explicit ShardedObjectStore(std::size_t capacity_bytes = 0,
                              std::size_t shards = 0);

  /// Inserts or overwrites. Capacity is checked against the striped
  /// byte rollup: exact per shard, conservative across racing inserts
  /// to distinct shards (a concurrent admit may transiently overshoot
  /// by the in-flight object before the loser is rejected).
  Status put(DataObject object, StoredKind kind);

  /// Zero-copy read: the returned entry's payload is a refcounted view
  /// of the stored buffer (no byte copy). COW makes the escaped view
  /// immune to later flip_byte/overwrite of the stored entry.
  StatusOr<StoredObject> get(const ObjectDescriptor& desc) const;

  bool erase(const ObjectDescriptor& desc);
  bool contains(const ObjectDescriptor& desc) const;

  /// Fault injection passthrough (see ObjectStore::flip_byte).
  bool flip_byte(const ObjectDescriptor& desc, std::size_t offset);

  /// Drops everything on every shard.
  void clear();

  // ---- lock-free rollups --------------------------------------------------
  // Striped relaxed counters maintained under the shard locks; reading
  // them never acquires a lock and is exact at quiesce.
  std::size_t count() const;
  std::size_t total_bytes() const;
  std::size_t bytes_of(StoredKind kind) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return num_shards_; }

  /// Iterates all entries shard by shard (shared lock per shard; order
  /// unspecified). Entries inserted/erased concurrently on other
  /// shards may or may not be visited.
  void for_each(
      const std::function<void(const StoredObject&)>& fn) const;

  /// Contention + occupancy snapshot for this store.
  ShardMetricsSnapshot shard_metrics() const;

 private:
  struct alignas(64) Shard {
    mutable InstrumentedSharedMutex mutex;
    ObjectStore store{0};  // per-shard capacity unlimited; global check
  };

  std::size_t shard_index(const ObjectDescriptor& desc) const {
    return DescriptorHash{}(desc) & mask_;
  }

  std::size_t capacity_;
  std::size_t mask_;
  std::unique_ptr<Shard[]> shards_;
  std::size_t num_shards_;
  StripedCounter count_;
  StripedCounter bytes_;
  StripedCounter kind_bytes_[4];
  // High-water mark of entries in any one shard (relaxed CAS max).
  mutable std::atomic<std::uint64_t> max_occupancy_{0};
  // Declared last: unregisters before the shards above are destroyed.
  ScopedShardMetricsRegistration metrics_registration_;
};

/// Entity-sharded metadata directory. Thread-safe; per-shard
/// shared_mutex. All versions of one (var, box) entity hash to the same
/// shard, so find/find_entity/remove are single-shard and per-shard
/// query_latest shadow tests see every version of the entities they
/// own.
class ShardedDirectory {
 public:
  explicit ShardedDirectory(std::size_t shards = 0);

  void upsert(const ObjectDescriptor& desc, ObjectLocation location);
  bool remove(const ObjectDescriptor& desc);

  /// Copy-out lookup (locations are small metadata records; payload
  /// zero-copy lives in the object store, not here).
  StatusOr<ObjectLocation> find(const ObjectDescriptor& desc) const;

  std::vector<ObjectDescriptor> query(
      VarId var, Version version, const geom::BoundingBox& region) const;

  /// Latest-version query. Each shard runs the exact shadow test over
  /// the entities it owns; the survivors are merged newest-first with
  /// one more global shadow pass. For disjoint entity boxes (the fitted
  /// partition invariant) this matches the monolithic Directory
  /// byte-for-byte; overlapping boxes may retain extra older
  /// descriptors, which callers already tolerate by assembling
  /// oldest-first.
  std::vector<ObjectDescriptor> query_latest(
      VarId var, Version version, const geom::BoundingBox& region) const;

  /// Live descriptor of entity (var, box), if any (single shard).
  StatusOr<ObjectDescriptor> find_entity(
      VarId var, const geom::BoundingBox& box) const;

  /// Lock-free striped rollup of registered objects.
  std::size_t size() const;

  /// Iterates every (descriptor, location) shard by shard.
  void for_each(
      const std::function<void(const ObjectDescriptor&,
                               const ObjectLocation&)>& fn) const;

  std::size_t shard_count() const { return num_shards_; }

  ShardMetricsSnapshot shard_metrics() const;

 private:
  struct alignas(64) Shard {
    mutable InstrumentedSharedMutex mutex;
    Directory dir;
  };

  std::size_t shard_index(VarId var, const geom::BoundingBox& box) const;

  std::size_t mask_;
  std::unique_ptr<Shard[]> shards_;
  std::size_t num_shards_;
  StripedCounter size_;
  mutable std::atomic<std::uint64_t> max_occupancy_{0};
  ScopedShardMetricsRegistration metrics_registration_;
};

}  // namespace corec::staging
