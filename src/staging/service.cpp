#include "staging/service.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/checksum.hpp"
#include "common/failpoint.hpp"
#include "membership/placement.hpp"
#include "staging/hyperslab.hpp"

namespace corec::staging {
namespace {

/// Builds the inverse permutation of a ring ordering.
std::vector<std::size_t> invert_ring(const std::vector<ServerId>& ring) {
  std::vector<std::size_t> pos(ring.size(), 0);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    pos[ring[i]] = i;
  }
  return pos;
}

}  // namespace

StagingService::StagingService(ServiceOptions options, sim::Simulation* sim,
                               std::unique_ptr<ResilienceScheme> scheme)
    : options_(std::move(options)),
      sim_(sim),
      scheme_(std::move(scheme)),
      mapper_(options_.domain, options_.curve),
      meta_(&local_meta_),
      ring_(options_.topology.make_ring()),
      ring_pos_(invert_ring(ring_)),
      pool_map_(membership::PoolMap::initial(
          options_.topology.num_servers(),
          options_.topology.nodes_per_cabinet(),
          options_.topology.servers_per_node())),
      rng_(options_.seed, 0x9e3779b97f4a7c15ULL) {
  servers_.reserve(options_.topology.num_servers());
  for (std::size_t i = 0; i < options_.topology.num_servers(); ++i) {
    servers_.emplace_back(options_.server_capacity);
  }
  sfc_key_span_ = std::uint64_t{1} << mapper_.key_bits();
  scheme_->bind(this);
}

void StagingService::attach_metadata(MetadataPlane* meta) {
  assert(local_meta_.size() == 0 &&
         "attach_metadata must run before any traffic");
  meta_ = meta != nullptr ? meta : &local_meta_;
}

ServerId StagingService::ring_next(ServerId s, std::size_t steps) const {
  std::size_t pos = (ring_pos_[s] + steps) % ring_.size();
  return ring_[pos];
}

ServerId StagingService::route(const geom::BoundingBox& box) const {
  if (options_.placement == PlacementMode::kPoolMap &&
      pool_map_.placement_count() > 0) {
    // HRW ranking over the pool map: the highest-scoring alive eligible
    // target is the primary. Falls through to the SFC ring only when
    // every eligible target is dead.
    auto ranked = membership::place(pool_map_, placement_key(box),
                                    pool_map_.placement_count());
    for (ServerId s : ranked) {
      if (servers_[s].alive) return s;
    }
  }
  sfc::SfcKey key = mapper_.key_of(box);
  auto pos = static_cast<std::size_t>(
      (static_cast<unsigned __int128>(key) * ring_.size()) >>
      mapper_.key_bits());
  pos = std::min(pos, ring_.size() - 1);
  // Walk the ring past dead servers so writes stay routable during
  // failures (DataSpaces reassigns the key range to a neighbour).
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    ServerId s = ring_[(pos + i) % ring_.size()];
    if (servers_[s].alive) return s;
  }
  return ring_[pos];  // nobody alive; caller will fail the op
}

std::uint64_t StagingService::placement_key(
    const geom::BoundingBox& box) const {
  return membership::mix64(mapper_.key_of(box));
}

std::vector<ServerId> StagingService::placement_of(
    const geom::BoundingBox& box, std::size_t count) const {
  auto ranked = membership::place(pool_map_, placement_key(box),
                                  pool_map_.placement_count());
  std::vector<ServerId> out;
  out.reserve(count);
  for (ServerId s : ranked) {
    if (out.size() == count) break;
    if (s < servers_.size() && servers_[s].alive) out.push_back(s);
  }
  return out;
}

std::vector<ServerId> StagingService::placement_group(
    const geom::BoundingBox& box, ServerId primary, std::size_t n) const {
  std::vector<ServerId> group;
  group.reserve(n);
  group.push_back(primary);
  auto ranked = membership::place(pool_map_, placement_key(box),
                                  pool_map_.placement_count());
  for (ServerId s : ranked) {
    if (group.size() == n) break;
    if (s == primary || s >= servers_.size() || !servers_[s].alive) {
      continue;
    }
    group.push_back(s);
  }
  // Last resort during heavy degradation: pad with any alive server so
  // the stripe width invariant holds (a duplicate-free group of n needs
  // n distinct alive servers; fewer and the caller's assert fires, as
  // before).
  for (ServerId s = 0; group.size() < n && s < servers_.size(); ++s) {
    if (!servers_[s].alive ||
        std::find(group.begin(), group.end(), s) != group.end()) {
      continue;
    }
    group.push_back(s);
  }
  return group;
}

ServerId StagingService::join_server() {
  const auto id = static_cast<ServerId>(servers_.size());
  servers_.emplace_back(options_.server_capacity);
  ring_.push_back(id);
  ring_pos_.push_back(ring_.size() - 1);
  const std::size_t spn = std::max<std::size_t>(
      options_.topology.servers_per_node(), 1);
  const std::size_t npc = std::max<std::size_t>(
      options_.topology.nodes_per_cabinet(), 1);
  pool_map_.add_target(static_cast<std::uint16_t>(id / (spn * npc)),
                       static_cast<std::uint16_t>((id / spn) % npc));
  replicate_map(sim_->now());
  return id;
}

Status StagingService::set_target_state(ServerId s,
                                        membership::TargetState state) {
  COREC_RETURN_IF_ERROR(pool_map_.set_state(s, state));
  replicate_map(sim_->now());
  return Status::Ok();
}

SimTime StagingService::replicate_map(SimTime now) {
  Bytes blob;
  pool_map_.encode(&blob);
  return meta_->replicate_map(blob, pool_map_.version(), now);
}

std::size_t StagingService::num_alive() const {
  std::size_t n = 0;
  for (const auto& s : servers_) {
    if (s.alive) ++n;
  }
  return n;
}

ShardHealth StagingService::probe_stored(ServerId s,
                                         const ObjectDescriptor& desc,
                                         std::uint32_t expected) {
  if (s == kInvalidServer || s >= servers_.size() || !servers_[s].alive) {
    return ShardHealth::kMissing;
  }
  const StoredObject* stored = servers_[s].store.find(desc);
  if (stored == nullptr) return ShardHealth::kMissing;
  if (stored->object.phantom) return ShardHealth::kOk;
  if (expected == 0) return ShardHealth::kOk;  // no checksum recorded
  ++integrity_.checks;
  // The buffer's generation-checked cache makes repeat probes of an
  // unmutated payload free; any mutation (fault injection, torn write)
  // bumps the generation and forces a genuine recompute, so corruption
  // is still caught.
  if (stored->object.data.crc32c() == expected) {
    return ShardHealth::kOk;
  }
  ++integrity_.mismatches;
  ++integrity_.quarantined;
  remove_at(s, desc);
  return ShardHealth::kCorrupt;
}

bool StagingService::corrupt_at(ServerId s, const ObjectDescriptor& desc,
                                std::size_t offset) {
  if (s >= servers_.size() || !servers_[s].alive) return false;
  return servers_[s].store.flip_byte(desc, offset);
}

const erasure::Codec& StagingService::codec(std::uint32_t k,
                                            std::uint32_t m) {
  std::uint64_t key = (static_cast<std::uint64_t>(k) << 32) | m;
  auto it = codecs_.find(key);
  if (it == codecs_.end()) {
    auto codec_or = erasure::make_reed_solomon(k, m);
    assert(codec_or.ok() && "invalid stripe geometry");
    it = codecs_.emplace(key, std::move(codec_or).value()).first;
  }
  return *it->second;
}

OpResult StagingService::put(VarId var, Version version,
                             const geom::BoundingBox& box, ByteSpan data) {
  return put_impl(var, version, box, data, /*phantom=*/false);
}

OpResult StagingService::put_phantom(VarId var, Version version,
                                     const geom::BoundingBox& box) {
  return put_impl(var, version, box, {}, /*phantom=*/true);
}

OpResult StagingService::put_impl(VarId var, Version version,
                                  const geom::BoundingBox& box,
                                  ByteSpan data, bool phantom) {
  OpResult result;
  result.issued = sim_->now();
  const SimTime t0 = result.issued;
  const std::size_t elem = options_.fit.element_size;

  if (!phantom && data.size() != box.volume() * elem) {
    result.status = Status::InvalidArgument("payload/box size mismatch");
    result.completed = t0;
    return result;
  }
  if (auto fp = COREC_FAILPOINT("staging.put.error")) {
    result.status = Status::Unavailable("failpoint: staging.put.error");
    result.completed = t0;
    return result;
  }
  if (num_alive() == 0) {
    result.status = Status::Unavailable("no staging servers alive");
    result.completed = t0;
    return result;
  }
  if (!meta_->available()) {
    result.status = Status::Unavailable("metadata plane unavailable");
    result.completed = t0;
    return result;
  }

  // Algorithm 1: fit the object into target-size pieces.
  auto pieces = geom::partition_and_fit(box, options_.fit);

  SimTime completion = t0;
  for (const auto& piece : pieces) {
    ObjectDescriptor desc{var, version, piece.box, kWholeObject};
    DataObject obj;
    if (phantom) {
      obj = DataObject::make_phantom(desc, piece.bytes);
    } else {
      auto payload = extract_region(data, box, piece.box, elem);
      if (!payload.ok()) {
        result.status = payload.status();
        result.completed = completion;
        return result;
      }
      obj = DataObject::real(desc, std::move(payload).value());
    }

    // Region-entity update semantics: a put over the same (var, box)
    // replaces the previous version.
    const ObjectDescriptor* prev_ptr = meta_->find_entity(var, piece.box);
    ObjectDescriptor prev;
    if (prev_ptr != nullptr) prev = *prev_ptr;

    ServerId primary = route(piece.box);
    if (options_.server_capacity != 0) {
      const auto& store = servers_[primary].store;
      if (store.total_bytes() + obj.logical_size > store.capacity()) {
        result.status = Status::ResourceExhausted(
            "staging server " + std::to_string(primary) +
            " memory budget exceeded");
        result.completed = completion;
        return result;
      }
    }
    result.breakdown.metadata += options_.cost.metadata_op;

    SimTime xfer = options_.cost.transfer_time(obj.logical_size);
    result.breakdown.transport += xfer;
    SimTime arrival = t0 + options_.cost.metadata_op + xfer;

    SimTime service_time = options_.cost.request_overhead +
                           options_.cost.copy_time(obj.logical_size);
    result.breakdown.copy += service_time;
    SimTime arrived = serve_at(primary, arrival, service_time);

    SimTime durable = scheme_->protect(
        obj, primary, prev_ptr != nullptr ? &prev : nullptr, arrived,
        &result.breakdown);
    completion = std::max(completion, durable);
  }

  result.completed = completion;
  result.status = Status::Ok();
  return result;
}

OpResult StagingService::get(VarId var, Version version,
                             const geom::BoundingBox& box, Bytes* out) {
  OpResult result;
  result.issued = sim_->now();
  const SimTime t0 = result.issued;
  const std::size_t elem = options_.fit.element_size;

  if (!meta_->available()) {
    result.status = Status::Unavailable("metadata plane unavailable");
    result.completed = t0;
    return result;
  }
  if (auto fp = COREC_FAILPOINT("staging.get.error")) {
    result.status = Status::Unavailable("failpoint: staging.get.error");
    result.completed = t0;
    return result;
  }
  result.breakdown.metadata += options_.cost.metadata_op;
  auto descs = meta_->query_latest(var, version, box);
  if (descs.empty()) {
    result.status = Status::NotFound("no staged data intersects region");
    result.completed = t0 + options_.cost.metadata_op;
    return result;
  }

  if (out != nullptr) {
    out->assign(static_cast<std::size_t>(box.volume()) * elem, 0);
  }

  SimTime start = t0 + options_.cost.metadata_op;
  SimTime completion = start;
  std::size_t assembled_bytes = 0;
  // Fetch all pieces (virtually in parallel), then assemble oldest
  // version first so that where coverage overlaps, the newest write
  // lands last and wins. Pieces are shared buffer views — a replicated
  // read costs a refcount bump, not a payload copy; the only real copy
  // is the hyperslab assembly into the caller's buffer below.
  std::vector<PayloadBuffer> pieces(out != nullptr ? descs.size() : 0);
  for (std::size_t i = 0; i < descs.size(); ++i) {
    PayloadBuffer* piece_out = out != nullptr ? &pieces[i] : nullptr;
    auto done =
        read_piece(descs[i], box, start, piece_out, &result.breakdown);
    if (!done.ok()) {
      result.status = done.status();
      result.completed = std::max(completion, start);
      return result;
    }
    completion = std::max(completion, done.value());
  }
  for (std::size_t ri = descs.size(); ri-- > 0;) {
    const auto& desc = descs[ri];
    geom::BoundingBox overlap;
    if (!desc.box.intersect(box, &overlap)) continue;
    assembled_bytes +=
        static_cast<std::size_t>(overlap.volume()) * elem;
    if (out != nullptr && !pieces[ri].empty()) {
      Status st = copy_region(pieces[ri].span(), desc.box,
                              MutableByteSpan(*out), box, overlap, elem);
      if (!st.ok()) {
        result.status = st;
        result.completed = completion;
        return result;
      }
    }
  }

  // Client-side assembly of the pieces into the caller's buffer.
  SimTime assemble = options_.cost.copy_time(assembled_bytes);
  result.breakdown.copy += assemble;
  result.completed = completion + assemble;
  result.status = Status::Ok();
  return result;
}

StatusOr<SimTime> StagingService::read_piece(const ObjectDescriptor& desc,
                                             const geom::BoundingBox& requested,
                                             SimTime start,
                                             PayloadBuffer* piece_out,
                                             Breakdown* bd) {
  scheme_->on_access(desc, start);
  const ObjectLocation* loc = meta_->find(desc);
  if (loc == nullptr) {
    return Status::NotFound("object missing from directory: " +
                            desc.to_string());
  }

  // Only the requested part of the piece moves over the wire (the
  // server extracts the hyperslab), so costs scale with the overlap.
  double fraction = 1.0;
  geom::BoundingBox overlap;
  if (desc.box.intersect(requested, &overlap)) {
    fraction = static_cast<double>(overlap.volume()) /
               static_cast<double>(desc.box.volume());
  }
  auto scaled = [fraction](std::size_t bytes) {
    return static_cast<std::size_t>(static_cast<double>(bytes) *
                                    fraction);
  };

  if (loc->protection != Protection::kEncoded) {
    // Whole copies: primary plus replicas; pick the least-loaded live
    // holder (replication's concurrent-read bandwidth advantage). A
    // copy failing its checksum is quarantined and the next holder
    // tried — corruption costs one replica, never corrupt bytes
    // returned to the reader.
    std::vector<ServerId> holders;
    holders.push_back(loc->primary);
    holders.insert(holders.end(), loc->replicas.begin(),
                   loc->replicas.end());
    const StoredObject* stored = nullptr;
    ServerId best = kInvalidServer;
    while (stored == nullptr) {
      best = kInvalidServer;
      SimTime best_backlog = 0;
      for (ServerId h : holders) {
        if (h == kInvalidServer || !servers_[h].alive) continue;
        if (!servers_[h].store.contains(desc)) continue;
        SimTime backlog = servers_[h].queue.backlog(start);
        if (best == kInvalidServer || backlog < best_backlog) {
          best = h;
          best_backlog = backlog;
        }
      }
      if (best == kInvalidServer) {
        return Status::DataLoss("all copies lost or corrupt: " +
                                desc.to_string());
      }
      if (probe_stored(best, desc, loc->object_checksum) ==
          ShardHealth::kOk) {
        stored = servers_[best].store.find(desc);
      }
    }
    SimTime service = options_.cost.request_overhead +
                      options_.cost.copy_time(scaled(loc->logical_size));
    bd->copy += service;
    SimTime t1 = serve_at(best, start + options_.cost.link_latency,
                          service);
    SimTime xfer = options_.cost.transfer_time(scaled(loc->logical_size));
    bd->transport += options_.cost.link_latency + xfer;
    if (piece_out != nullptr) {
      if (stored->object.phantom) {
        *piece_out = PayloadBuffer();
      } else {
        // Shared view of the holder's payload — no byte copy.
        *piece_out = stored->object.data;
      }
    }
    return t1 + xfer;
  }

  // Encoded object: fetch the k data chunks in parallel. Each chunk is
  // verified against its recorded checksum; a corrupt chunk is
  // quarantined and the read falls into the degraded path, which
  // decodes around it.
  const std::uint32_t k = loc->k;
  bool all_data_present = true;
  for (std::uint32_t i = 0; i < k; ++i) {
    ServerId s = loc->stripe_servers[i];
    if (probe_stored(s, desc.shard_of(static_cast<ShardIndex>(1 + i)),
                     shard_checksum(*loc, i)) != ShardHealth::kOk) {
      all_data_present = false;
      break;
    }
  }
  if (!all_data_present) {
    return read_degraded(desc, *loc, fraction, start, piece_out, bd);
  }

  // Scatter/gather: one exact logical_size allocation, each chunk view
  // copied straight into its final position (no oversized k*chunk
  // scratch buffer, no trailing resize).
  SimTime done = start;
  Bytes assembled;
  if (piece_out != nullptr) {
    assembled.resize(loc->logical_size);
  }
  bool phantom = false;
  for (std::uint32_t i = 0; i < k; ++i) {
    ServerId s = loc->stripe_servers[i];
    auto shard_desc = desc.shard_of(static_cast<ShardIndex>(1 + i));
    const StoredObject* stored = servers_[s].store.find(shard_desc);
    SimTime service = options_.cost.request_overhead +
                      options_.cost.copy_time(scaled(loc->chunk_size));
    bd->copy += service;
    SimTime t1 = serve_at(s, start + options_.cost.link_latency, service);
    SimTime xfer = options_.cost.transfer_time(scaled(loc->chunk_size));
    bd->transport += options_.cost.link_latency + xfer;
    done = std::max(done, t1 + xfer);
    if (piece_out != nullptr) {
      if (stored->object.phantom) {
        phantom = true;
      } else {
        const std::size_t begin =
            static_cast<std::size_t>(i) * loc->chunk_size;
        if (begin < assembled.size()) {
          const std::size_t want = std::min<std::size_t>(
              assembled.size() - begin, stored->object.data.size());
          std::memcpy(assembled.data() + begin, stored->object.data.data(),
                      want);
        }
      }
    }
  }
  if (piece_out != nullptr) {
    if (phantom) {
      *piece_out = PayloadBuffer();
    } else {
      payload_metrics().bytes_copied.fetch_add(assembled.size(),
                                               std::memory_order_relaxed);
      *piece_out = PayloadBuffer::wrap(std::move(assembled));
    }
  }
  return done;
}

StatusOr<SimTime> StagingService::read_degraded(
    const ObjectDescriptor& desc, const ObjectLocation& loc,
    double fraction, SimTime start, PayloadBuffer* piece_out,
    Breakdown* bd) {
  const std::uint32_t k = loc.k;
  const std::uint32_t n = loc.k + loc.m;
  auto scaled = [fraction](std::size_t bytes) {
    return static_cast<std::size_t>(static_cast<double>(bytes) *
                                    fraction);
  };

  // Which stripe shards survive? A shard failing its checksum is
  // quarantined and counted as one more erasure to decode around —
  // corruption and loss are the same event from here on.
  std::vector<std::uint32_t> survivors;
  std::vector<std::size_t> erased;  // codec block indices
  for (std::uint32_t i = 0; i < n; ++i) {
    ServerId s = loc.stripe_servers[i];
    auto shard_desc = desc.shard_of(static_cast<ShardIndex>(1 + i));
    if (probe_stored(s, shard_desc, shard_checksum(loc, i)) ==
        ShardHealth::kOk) {
      survivors.push_back(i);
    } else {
      erased.push_back(i);
    }
  }
  if (survivors.size() < k) {
    return Status::DataLoss("stripe unrecoverable: " + desc.to_string());
  }

  // Prefer data shards among the k sources (cheaper decode), then
  // parity shards as needed.
  std::vector<std::uint32_t> sources;
  for (std::uint32_t i : survivors) {
    if (sources.size() < k) sources.push_back(i);
  }

  // Coordinator: the least-loaded source server reconstructs the
  // missing data chunks (degraded-mode read, Section III-D).
  ServerId coord = loc.stripe_servers[sources[0]];
  for (std::uint32_t i : sources) {
    ServerId s = loc.stripe_servers[i];
    if (servers_[s].queue.backlog(start) <
        servers_[coord].queue.backlog(start)) {
      coord = s;
    }
  }

  // Gather the k source chunks at the coordinator.
  SimTime gathered = start;
  for (std::uint32_t i : sources) {
    ServerId s = loc.stripe_servers[i];
    SimTime service = options_.cost.request_overhead +
                      options_.cost.copy_time(loc.chunk_size);
    bd->copy += service;
    SimTime t1 = serve_at(s, start + options_.cost.link_latency, service);
    if (s != coord) {
      SimTime xfer = options_.cost.transfer_time(loc.chunk_size);
      bd->transport += options_.cost.link_latency + xfer;
      t1 += xfer;
    }
    gathered = std::max(gathered, t1);
  }

  // Decode only the erased *data* chunks (requested data path).
  std::size_t erased_data = 0;
  for (std::size_t e : erased) {
    if (e < k) ++erased_data;
  }
  // Only the requested rows are reconstructed (degraded mode rebuilds
  // what the client asked for and discards it, Section III-D).
  SimTime decode_service = options_.cost.decode_time(
      k, std::max<std::size_t>(erased_data, 1), scaled(loc.chunk_size));
  bd->decode += decode_service;
  SimTime t_dec = serve_at(coord, gathered, decode_service);

  // Real reconstruction when payloads are real.
  if (piece_out != nullptr) {
    bool phantom = false;
    std::vector<Bytes> blocks(n, Bytes(loc.chunk_size, 0));
    for (std::uint32_t i : survivors) {
      ServerId s = loc.stripe_servers[i];
      const StoredObject* stored = servers_[s].store.find(
          desc.shard_of(static_cast<ShardIndex>(1 + i)));
      if (stored->object.phantom) {
        phantom = true;
        break;
      }
      std::memcpy(blocks[i].data(), stored->object.data.data(),
                  std::min<std::size_t>(stored->object.data.size(),
                                        loc.chunk_size));
    }
    if (phantom) {
      *piece_out = PayloadBuffer();
    } else {
      const auto& rs = codec(loc.k, loc.m);
      std::vector<MutableByteSpan> spans;
      spans.reserve(n);
      for (auto& b : blocks) spans.emplace_back(b);
      COREC_RETURN_IF_ERROR(rs.decode(spans, erased));
      // Gather the k data blocks straight into one exact-size buffer.
      Bytes assembled(loc.logical_size, 0);
      for (std::uint32_t i = 0; i < k; ++i) {
        const std::size_t begin =
            static_cast<std::size_t>(i) * loc.chunk_size;
        if (begin >= assembled.size()) break;
        const std::size_t want = std::min<std::size_t>(
            assembled.size() - begin, blocks[i].size());
        std::memcpy(assembled.data() + begin, blocks[i].data(), want);
      }
      payload_metrics().bytes_copied.fetch_add(assembled.size(),
                                               std::memory_order_relaxed);
      // End-to-end check of the decode output: per-shard checksums
      // guard the inputs, this guards the reconstruction itself (and
      // any metadata/geometry inconsistency between them).
      if (loc.object_checksum != 0) {
        ++integrity_.checks;
        if (crc32c(assembled.data(), assembled.size()) !=
            loc.object_checksum) {
          ++integrity_.mismatches;
          return Status::DataLoss("decoded payload failed checksum: " +
                                  desc.to_string());
        }
      }
      *piece_out = PayloadBuffer::wrap(std::move(assembled));
    }
  }

  // Ship the reconstructed payload to the client and discard it
  // (degraded mode does not re-install the chunks).
  SimTime xfer = options_.cost.transfer_time(scaled(loc.logical_size));
  bd->transport += xfer;
  return t_dec + xfer;
}

void StagingService::end_time_step(Version step) {
  scheme_->end_of_step(step, sim_->now());
}

void StagingService::kill_server(ServerId s) {
  assert(s < servers_.size());
  if (!servers_[s].alive) return;
  servers_[s].alive = false;
  stored_total_ -= servers_[s].store.total_bytes();
  servers_[s].store.clear();
  servers_[s].queue.reset(sim_->now());
  ++servers_[s].failures;
  // Metadata plane reacts first (failover elects a new primary) so the
  // scheme's recovery work sees a live directory.
  meta_->on_server_failed(s, sim_->now());
  scheme_->on_server_failed(s, sim_->now());
}

void StagingService::replace_server(ServerId s) {
  assert(s < servers_.size());
  if (servers_[s].alive) return;
  servers_[s].alive = true;
  servers_[s].queue.reset(sim_->now());
  meta_->on_server_replaced(s, sim_->now());
  scheme_->on_server_replaced(s, sim_->now());
}

std::size_t StagingService::logical_bytes() const {
  std::size_t total = 0;
  meta_->for_each(
      [&total](const ObjectDescriptor&, const ObjectLocation& loc) {
        total += loc.logical_size;
      });
  return total;
}

std::size_t StagingService::stored_bytes() const {
  // Maintained incrementally by store_at/remove_at/kill_server; the
  // invariant against the per-store sums is checked in tests.
  return stored_total_;
}

std::size_t StagingService::stored_bytes_recomputed() const {
  std::size_t total = 0;
  for (const auto& s : servers_) total += s.store.total_bytes();
  return total;
}

double StagingService::storage_efficiency() const {
  std::size_t stored = stored_bytes();
  if (stored == 0) return 1.0;
  return static_cast<double>(logical_bytes()) /
         static_cast<double>(stored);
}

}  // namespace corec::staging
