// Legacy single-lock facades over ObjectStore + Directory. One global
// shared_mutex serializes all writers and stalls readers behind them —
// kept as the monolithic baseline the concurrency benches compare
// against, and for callers that want the simplest possible wrapper.
// New real-thread code should use the lock-striped ShardedObjectStore /
// ShardedDirectory (staging/sharded_store.hpp) or the ThreadFabric
// dispatcher (staging/thread_fabric.hpp), which scale with cores.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "staging/directory.hpp"
#include "staging/object_store.hpp"

namespace corec::staging {

/// Mutex-guarded object store for concurrent access (single lock).
class ConcurrentStore {
 public:
  explicit ConcurrentStore(std::size_t capacity_bytes = 0)
      : store_(capacity_bytes) {}

  Status put(DataObject object, StoredKind kind) {
    std::unique_lock lock(mutex_);
    return store_.put(std::move(object), kind);
  }

  /// Zero-copy read: the returned entry's payload is a refcounted
  /// PayloadBuffer view of the stored bytes, not a copy. The view is
  /// safe after the lock drops because every mutation path (flip_byte,
  /// overwriting put) detaches via copy-on-write first.
  StatusOr<StoredObject> get(const ObjectDescriptor& desc) const {
    std::shared_lock lock(mutex_);
    const StoredObject* found = store_.find(desc);
    if (found == nullptr) {
      return Status::NotFound("object not stored: " + desc.to_string());
    }
    return *found;
  }

  bool erase(const ObjectDescriptor& desc) {
    std::unique_lock lock(mutex_);
    return store_.erase(desc);
  }

  bool contains(const ObjectDescriptor& desc) const {
    std::shared_lock lock(mutex_);
    return store_.contains(desc);
  }

  std::size_t count() const {
    std::shared_lock lock(mutex_);
    return store_.count();
  }

  std::size_t total_bytes() const {
    std::shared_lock lock(mutex_);
    return store_.total_bytes();
  }

  void clear() {
    std::unique_lock lock(mutex_);
    store_.clear();
  }

 private:
  mutable std::shared_mutex mutex_;
  ObjectStore store_;
};

/// Mutex-guarded metadata directory for concurrent access.
class ConcurrentDirectory {
 public:
  void upsert(const ObjectDescriptor& desc, ObjectLocation location) {
    std::unique_lock lock(mutex_);
    dir_.upsert(desc, std::move(location));
  }

  bool remove(const ObjectDescriptor& desc) {
    std::unique_lock lock(mutex_);
    return dir_.remove(desc);
  }

  /// Copy-out lookup.
  StatusOr<ObjectLocation> find(const ObjectDescriptor& desc) const {
    std::shared_lock lock(mutex_);
    const ObjectLocation* loc = dir_.find(desc);
    if (loc == nullptr) {
      return Status::NotFound("not registered: " + desc.to_string());
    }
    return *loc;
  }

  std::vector<ObjectDescriptor> query_latest(
      VarId var, Version version, const geom::BoundingBox& region) const {
    std::shared_lock lock(mutex_);
    return dir_.query_latest(var, version, region);
  }

  std::size_t size() const {
    std::shared_lock lock(mutex_);
    return dir_.size();
  }

 private:
  mutable std::shared_mutex mutex_;
  Directory dir_;
};

}  // namespace corec::staging
