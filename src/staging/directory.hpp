// Distributed metadata directory (the DataSpaces DHT substitute). Keeps
// the authoritative mapping from object descriptors to their placement
// and protection state, and answers geometric queries (which objects of
// variable v, version t intersect region R). The *cost* of directory
// operations is charged through the cluster's cost model; this class is
// the state.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "staging/object.hpp"

namespace corec::staging {

/// How an object is currently protected.
enum class Protection : std::uint8_t {
  kNone,        // single copy on the primary
  kReplicated,  // primary + replicas
  kEncoded,     // striped into k data + m parity chunks
};

inline const char* to_string(Protection p) {
  switch (p) {
    case Protection::kNone: return "none";
    case Protection::kReplicated: return "replicated";
    case Protection::kEncoded: return "encoded";
  }
  return "?";
}

/// Placement record for one whole object.
struct ObjectLocation {
  ServerId primary = kInvalidServer;
  Protection protection = Protection::kNone;
  std::vector<ServerId> replicas;        // kReplicated
  std::vector<ServerId> stripe_servers;  // kEncoded: n = k + m entries
  std::uint32_t k = 0;                   // kEncoded stripe geometry
  std::uint32_t m = 0;
  std::size_t chunk_size = 0;            // bytes per chunk (padded)
  std::size_t logical_size = 0;          // true payload bytes
  // End-to-end integrity tags, stamped at placement time. 0 means "no
  // checksum recorded" (phantom payloads): verification is skipped.
  std::uint32_t object_checksum = 0;     // CRC32C of the whole payload
  std::vector<std::uint32_t> shard_checksums;  // kEncoded: n per-shard CRCs
};

/// Recorded checksum of stripe shard `i` (0-based over the n = k + m
/// shards); 0 ("none recorded") when out of range.
inline std::uint32_t shard_checksum(const ObjectLocation& loc,
                                    std::size_t i) {
  return i < loc.shard_checksums.size() ? loc.shard_checksums[i] : 0;
}

/// Metadata directory: descriptor -> location plus a per-(var, version)
/// geometric index for intersection queries.
class Directory {
 public:
  /// Registers or updates the location of `desc` (whole objects only).
  void upsert(const ObjectDescriptor& desc, ObjectLocation location);

  /// Removes `desc` (object deleted).
  bool remove(const ObjectDescriptor& desc);

  /// Looks up the location of exactly `desc`.
  const ObjectLocation* find(const ObjectDescriptor& desc) const;
  ObjectLocation* find_mutable(const ObjectDescriptor& desc);

  /// All descriptors of (var, version) whose boxes intersect `region`.
  std::vector<ObjectDescriptor> query(VarId var, Version version,
                                      const geom::BoundingBox& region)
      const;

  /// All descriptors of `var` at the latest version <= `version` that
  /// intersect `region` — DataSpaces "latest version" read semantics.
  /// An object written at version w is visible to reads at any v >= w
  /// until overwritten; this returns, per region piece, the newest
  /// matching descriptor.
  std::vector<ObjectDescriptor> query_latest(VarId var, Version version,
                                             const geom::BoundingBox& region)
      const;

  /// Finds the live descriptor of the region entity (var, box): the
  /// currently registered object with exactly this variable and box,
  /// whatever its version. Simulation writes update the same region
  /// every time step; this lookup turns such writes into updates of one
  /// entity instead of an unbounded version history.
  const ObjectDescriptor* find_entity(VarId var,
                                      const geom::BoundingBox& box) const;

  /// Total number of registered objects.
  std::size_t size() const { return locations_.size(); }

  /// Iterate every (descriptor, location).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [desc, loc] : locations_) fn(desc, loc);
  }

 private:
  static ObjectDescriptor entity_key(VarId var,
                                     const geom::BoundingBox& box) {
    return ObjectDescriptor{var, 0, box, kWholeObject};
  }

  std::unordered_map<ObjectDescriptor, ObjectLocation, DescriptorHash>
      locations_;
  // (var, version) -> descriptors, for geometric queries.
  std::map<std::pair<VarId, Version>, std::vector<ObjectDescriptor>>
      by_version_;
  // Normalized (var, box) -> live descriptor.
  std::unordered_map<ObjectDescriptor, ObjectDescriptor, DescriptorHash>
      entities_;
};

}  // namespace corec::staging
