// The staged-object model: descriptors identify a (variable, version,
// region, shard) tuple — the DataSpaces object naming scheme extended
// with a shard index so erasure-coded chunk placement can reuse the same
// storage plumbing as whole objects.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/buffer.hpp"
#include "common/checksum.hpp"
#include "common/types.hpp"
#include "geom/bbox.hpp"

namespace corec::staging {

/// Shard index semantics: 0 = the whole object; 1..k = erasure data
/// chunk (i-1); k+1..k+m = parity chunk (i-k-1).
using ShardIndex = std::uint16_t;
inline constexpr ShardIndex kWholeObject = 0;

/// Unique name of a staged object (or one shard of it).
struct ObjectDescriptor {
  VarId var = 0;
  Version version = 0;
  geom::BoundingBox box;
  ShardIndex shard = kWholeObject;

  /// The same object without shard qualification.
  ObjectDescriptor base() const {
    return {var, version, box, kWholeObject};
  }

  /// Descriptor of shard `i` of this object.
  ObjectDescriptor shard_of(ShardIndex i) const {
    return {var, version, box, i};
  }

  std::string to_string() const;

  friend bool operator==(const ObjectDescriptor& a,
                         const ObjectDescriptor& b) {
    return a.var == b.var && a.version == b.version &&
           a.shard == b.shard && a.box == b.box;
  }
};

/// Hash functor for descriptor-keyed maps.
struct DescriptorHash {
  std::size_t operator()(const ObjectDescriptor& d) const;
};

/// A staged payload. Real payloads carry bytes; *phantom* payloads carry
/// only a size, letting the discrete-event substrate run paper-scale
/// volumes (hundreds of GB) without allocating them.
///
/// `data` is a refcounted view: copying a DataObject (replica placement,
/// store reads) shares the backing allocation, and mutation paths
/// (corruption injection) detach via copy-on-write.
struct DataObject {
  ObjectDescriptor desc;
  PayloadBuffer data;             // empty when phantom
  std::size_t logical_size = 0;   // always the true payload size
  std::uint32_t checksum = 0;     // CRC32C of `data` at creation; 0 if phantom
  bool phantom = false;

  /// Real-payload constructor; stamps the payload's CRC32C so every
  /// downstream copy carries its integrity tag.
  static DataObject real(ObjectDescriptor d, Bytes bytes) {
    return real(d, PayloadBuffer::wrap(std::move(bytes)));
  }

  /// Real payload from an existing (possibly shared) buffer. The CRC is
  /// computed through the buffer's generation-checked cache, so stamping
  /// a shard view whose tag was already computed costs nothing.
  static DataObject real(ObjectDescriptor d, PayloadBuffer buffer) {
    DataObject o;
    o.desc = d;
    o.logical_size = buffer.size();
    o.checksum = buffer.crc32c();
    o.data = std::move(buffer);
    return o;
  }

  /// Real payload with a CRC the caller already knows (e.g. the
  /// directory-recorded tag during materialization). Skips the fresh
  /// CRC pass; the buffer cache stays unseeded so quarantine probes
  /// still genuinely verify the bytes. A zero tag on a non-empty
  /// payload falls back to computing one.
  static DataObject with_checksum(ObjectDescriptor d, PayloadBuffer buffer,
                                  std::uint32_t crc) {
    if (crc == 0) return real(d, std::move(buffer));
    DataObject o;
    o.desc = d;
    o.logical_size = buffer.size();
    o.checksum = crc;
    o.data = std::move(buffer);
    return o;
  }

  /// Phantom-payload constructor (size-only).
  static DataObject make_phantom(ObjectDescriptor d, std::size_t size) {
    DataObject o;
    o.desc = d;
    o.logical_size = size;
    o.phantom = true;
    return o;
  }
};

}  // namespace corec::staging
