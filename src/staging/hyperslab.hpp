// N-dimensional region (hyperslab) copies between row-major payloads —
// the assembly step of a DataSpaces get() that stitches object pieces
// into the caller's buffer, and the extraction step of partial writes.
#pragma once

#include "common/buffer.hpp"
#include "common/status.hpp"
#include "geom/bbox.hpp"

namespace corec::staging {

/// Copies the region `region` from `src` (laid out row-major over
/// `src_box`) into `dst` (row-major over `dst_box`). `region` must be
/// contained in both boxes; element_size is bytes per grid point.
/// Copies contiguous runs along the last dimension.
Status copy_region(ByteSpan src, const geom::BoundingBox& src_box,
                   MutableByteSpan dst, const geom::BoundingBox& dst_box,
                   const geom::BoundingBox& region,
                   std::size_t element_size);

/// Extracts `region` of `src` into a fresh buffer (row-major over
/// `region`).
StatusOr<Bytes> extract_region(ByteSpan src,
                               const geom::BoundingBox& src_box,
                               const geom::BoundingBox& region,
                               std::size_t element_size);

}  // namespace corec::staging
