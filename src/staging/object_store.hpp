// Per-server in-memory object store: primary copies, replicas, and
// erasure chunk shards, with byte accounting per role so the cluster can
// report storage efficiency and enforce memory budgets.
#pragma once

#include <cstddef>
#include <functional>
#include <unordered_map>

#include "common/status.hpp"
#include "staging/object.hpp"

namespace corec::staging {

/// Role of a stored entry in the resilience scheme.
enum class StoredKind : std::uint8_t {
  kPrimary,   // the authoritative copy of a whole object
  kReplica,   // an additional copy placed for fault tolerance
  kDataChunk, // erasure-coded data shard
  kParity,    // erasure-coded parity shard
};

inline const char* to_string(StoredKind k) {
  switch (k) {
    case StoredKind::kPrimary: return "primary";
    case StoredKind::kReplica: return "replica";
    case StoredKind::kDataChunk: return "data-chunk";
    case StoredKind::kParity: return "parity";
  }
  return "?";
}

/// One stored entry.
struct StoredObject {
  DataObject object;
  StoredKind kind = StoredKind::kPrimary;
};

/// Hash-keyed local store with per-kind byte accounting. Not
/// thread-safe on its own: the virtual-time simulator drives it from a
/// single thread, and real-thread deployments compose per-shard
/// instances behind the lock stripes of ShardedObjectStore, which the
/// ThreadFabric dispatcher drives from many client threads.
class ObjectStore {
 public:
  /// `capacity_bytes` of 0 means unlimited.
  explicit ObjectStore(std::size_t capacity_bytes = 0)
      : capacity_(capacity_bytes) {}

  /// Inserts or overwrites. Fails with ResourceExhausted if the new
  /// total would exceed capacity.
  Status put(DataObject object, StoredKind kind);

  /// Looks up the entry with exactly this descriptor.
  const StoredObject* find(const ObjectDescriptor& desc) const;

  /// Removes an entry; returns true if it was present.
  bool erase(const ObjectDescriptor& desc);

  /// Fault injection: XORs one bit into the stored bytes of `desc` at
  /// `offset % size`, simulating silent in-memory corruption. Byte
  /// accounting is untouched. Copy-on-write: if the payload shares its
  /// backing store with sibling replicas, this entry detaches to a
  /// private copy first, so corruption never aliases across holders.
  /// Returns false for absent/phantom/empty entries (nothing to
  /// corrupt) — deterministically a no-op, never a crash.
  bool flip_byte(const ObjectDescriptor& desc, std::size_t offset);

  /// Drops everything (server failure). Byte accounting resets.
  void clear();

  bool contains(const ObjectDescriptor& desc) const {
    return find(desc) != nullptr;
  }

  std::size_t count() const { return entries_.size(); }
  std::size_t total_bytes() const { return total_bytes_; }
  std::size_t bytes_of(StoredKind kind) const {
    return kind_bytes_[static_cast<std::size_t>(kind)];
  }
  std::size_t capacity() const { return capacity_; }

  /// Iterates all entries (order unspecified).
  void for_each(
      const std::function<void(const StoredObject&)>& fn) const;

 private:
  std::size_t capacity_;
  std::size_t total_bytes_ = 0;
  std::size_t kind_bytes_[4] = {0, 0, 0, 0};
  std::unordered_map<ObjectDescriptor, StoredObject, DescriptorHash>
      entries_;
};

}  // namespace corec::staging
