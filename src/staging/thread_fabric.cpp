#include "staging/thread_fabric.hpp"

#include <thread>

namespace corec::staging {

namespace {

std::size_t default_workers() {
  std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

}  // namespace

ThreadFabric::ThreadFabric(std::size_t num_servers, FabricOptions options)
    : directory_(options.directory_shards),
      pool_(options.workers == 0 ? default_workers() : options.workers) {
  if (num_servers == 0) num_servers = 1;
  stores_.reserve(num_servers);
  for (std::size_t s = 0; s < num_servers; ++s) {
    stores_.push_back(std::make_unique<ShardedObjectStore>(
        options.server_capacity, options.store_shards));
  }
}

Status ThreadFabric::put(ServerId server, DataObject object,
                         StoredKind kind) {
  puts_.fetch_add(1, std::memory_order_relaxed);
  Status st = stores_[server]->put(std::move(object), kind);
  if (!st.ok()) put_failures_.fetch_add(1, std::memory_order_relaxed);
  return st;
}

StatusOr<StoredObject> ThreadFabric::get(
    ServerId server, const ObjectDescriptor& desc) const {
  gets_.fetch_add(1, std::memory_order_relaxed);
  auto found = stores_[server]->get(desc);
  if (!found.ok()) get_misses_.fetch_add(1, std::memory_order_relaxed);
  return found;
}

bool ThreadFabric::erase(ServerId server, const ObjectDescriptor& desc) {
  erases_.fetch_add(1, std::memory_order_relaxed);
  return stores_[server]->erase(desc);
}

ServerId ThreadFabric::route(const ObjectDescriptor& desc) const {
  return static_cast<ServerId>(DescriptorHash{}(desc.base()) %
                               stores_.size());
}

Status ThreadFabric::put(DataObject object, StoredKind kind) {
  ServerId s = route(object.desc);
  return put(s, std::move(object), kind);
}

StatusOr<StoredObject> ThreadFabric::get(
    const ObjectDescriptor& desc) const {
  return get(route(desc), desc);
}

bool ThreadFabric::erase(const ObjectDescriptor& desc) {
  return erase(route(desc), desc);
}

void ThreadFabric::async_put(ServerId server, DataObject object,
                             StoredKind kind,
                             std::function<void(Status)> done) {
  pool_.submit([this, server, object = std::move(object), kind,
                done = std::move(done)]() mutable {
    Status st = put(server, std::move(object), kind);
    if (done) done(std::move(st));
  });
}

void ThreadFabric::async_get(
    ServerId server, ObjectDescriptor desc,
    std::function<void(StatusOr<StoredObject>)> done) {
  pool_.submit([this, server, desc, done = std::move(done)] {
    done(get(server, desc));
  });
}

void ThreadFabric::async_erase(ServerId server, ObjectDescriptor desc,
                               std::function<void(bool)> done) {
  pool_.submit([this, server, desc, done = std::move(done)] {
    bool erased = erase(server, desc);
    if (done) done(erased);
  });
}

std::size_t ThreadFabric::total_objects() const {
  std::size_t sum = 0;
  for (const auto& store : stores_) sum += store->count();
  return sum;
}

std::size_t ThreadFabric::total_bytes() const {
  std::size_t sum = 0;
  for (const auto& store : stores_) sum += store->total_bytes();
  return sum;
}

FabricStatsSnapshot ThreadFabric::stats() const {
  FabricStatsSnapshot snap;
  snap.puts = puts_.load(std::memory_order_relaxed);
  snap.gets = gets_.load(std::memory_order_relaxed);
  snap.erases = erases_.load(std::memory_order_relaxed);
  snap.put_failures = put_failures_.load(std::memory_order_relaxed);
  snap.get_misses = get_misses_.load(std::memory_order_relaxed);
  return snap;
}

ShardMetricsSnapshot ThreadFabric::shard_metrics() const {
  ShardMetricsSnapshot snap;
  for (const auto& store : stores_) snap.merge(store->shard_metrics());
  snap.merge(directory_.shard_metrics());
  return snap;
}

}  // namespace corec::staging
