#include "staging/thread_fabric.hpp"

#include <thread>
#include <utility>

#include "membership/placement.hpp"

namespace corec::staging {

namespace {

std::size_t default_workers() {
  std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

}  // namespace

ThreadFabric::ThreadFabric(std::size_t num_servers, FabricOptions options)
    : directory_(options.directory_shards),
      pool_(options.workers == 0 ? default_workers() : options.workers),
      options_(options),
      pool_dispatch_(options.pool_dispatch) {
  if (num_servers == 0) num_servers = 1;
  stores_.reserve(num_servers);
  for (std::size_t s = 0; s < num_servers; ++s) {
    stores_.push_back(std::make_unique<ShardedObjectStore>(
        options.server_capacity, options.store_shards));
  }
  // Flat domain layout: the fabric has no cabinet topology, so every
  // target sits on its own node of cabinet 0.
  map_ = membership::PoolMap::initial(num_servers, num_servers, 1);
  map_version_.store(map_.version(), std::memory_order_release);
}

Status ThreadFabric::put(ServerId server, DataObject object,
                         StoredKind kind) {
  puts_.fetch_add(1, std::memory_order_relaxed);
  Status st = store_ptr(server)->put(std::move(object), kind);
  if (!st.ok()) put_failures_.fetch_add(1, std::memory_order_relaxed);
  return st;
}

StatusOr<StoredObject> ThreadFabric::get(
    ServerId server, const ObjectDescriptor& desc) const {
  gets_.fetch_add(1, std::memory_order_relaxed);
  auto found = store_ptr(server)->get(desc);
  if (!found.ok()) get_misses_.fetch_add(1, std::memory_order_relaxed);
  return found;
}

bool ThreadFabric::erase(ServerId server, const ObjectDescriptor& desc) {
  erases_.fetch_add(1, std::memory_order_relaxed);
  return store_ptr(server)->erase(desc);
}

ServerId ThreadFabric::home_under(const membership::PoolMap& map,
                                  const ObjectDescriptor& desc) const {
  return membership::place_one(
      map, membership::mix64(DescriptorHash{}(desc.base())), 0);
}

ServerId ThreadFabric::route(const ObjectDescriptor& desc) const {
  std::shared_lock<std::shared_mutex> lk(membership_mu_);
  if (pool_dispatch_) {
    ServerId home = membership::place_one(
        map_, membership::mix64(DescriptorHash{}(desc.base())), 0);
    if (home != kInvalidServer) return home;
  }
  return static_cast<ServerId>(DescriptorHash{}(desc.base()) %
                               stores_.size());
}

Status ThreadFabric::put(DataObject object, StoredKind kind) {
  ServerId s = route(object.desc);
  return put(s, std::move(object), kind);
}

StatusOr<StoredObject> ThreadFabric::get(
    const ObjectDescriptor& desc) const {
  return get(route(desc), desc);
}

bool ThreadFabric::erase(const ObjectDescriptor& desc) {
  return erase(route(desc), desc);
}

void ThreadFabric::async_put(ServerId server, DataObject object,
                             StoredKind kind,
                             std::function<void(Status)> done) {
  pool_.submit([this, server, object = std::move(object), kind,
                done = std::move(done)]() mutable {
    Status st = put(server, std::move(object), kind);
    if (done) done(std::move(st));
  });
}

void ThreadFabric::async_get(
    ServerId server, ObjectDescriptor desc,
    std::function<void(StatusOr<StoredObject>)> done) {
  pool_.submit([this, server, desc, done = std::move(done)] {
    done(get(server, desc));
  });
}

void ThreadFabric::async_erase(ServerId server, ObjectDescriptor desc,
                               std::function<void(bool)> done) {
  pool_.submit([this, server, desc, done = std::move(done)] {
    bool erased = erase(server, desc);
    if (done) done(erased);
  });
}

std::size_t ThreadFabric::total_objects() const {
  std::shared_lock<std::shared_mutex> lk(membership_mu_);
  std::size_t sum = 0;
  for (const auto& store : stores_) sum += store->count();
  return sum;
}

std::size_t ThreadFabric::total_bytes() const {
  std::shared_lock<std::shared_mutex> lk(membership_mu_);
  std::size_t sum = 0;
  for (const auto& store : stores_) sum += store->total_bytes();
  return sum;
}

FabricStatsSnapshot ThreadFabric::stats() const {
  FabricStatsSnapshot snap;
  snap.puts = puts_.load(std::memory_order_relaxed);
  snap.gets = gets_.load(std::memory_order_relaxed);
  snap.erases = erases_.load(std::memory_order_relaxed);
  snap.put_failures = put_failures_.load(std::memory_order_relaxed);
  snap.get_misses = get_misses_.load(std::memory_order_relaxed);
  return snap;
}

ShardMetricsSnapshot ThreadFabric::shard_metrics() const {
  std::shared_lock<std::shared_mutex> lk(membership_mu_);
  ShardMetricsSnapshot snap;
  for (const auto& store : stores_) snap.merge(store->shard_metrics());
  snap.merge(directory_.shard_metrics());
  return snap;
}

// ---- elastic membership ---------------------------------------------------

membership::PoolMap ThreadFabric::pool_map_copy() const {
  std::shared_lock<std::shared_mutex> lk(membership_mu_);
  return map_;
}

Bytes ThreadFabric::map_blob() const {
  Bytes blob;
  pool_map_copy().encode(&blob);
  return blob;
}

void ThreadFabric::publish(membership::PoolMap next) {
  std::unique_lock<std::shared_mutex> lk(membership_mu_);
  map_ = std::move(next);
  map_version_.store(map_.version(), std::memory_order_release);
}

std::size_t ThreadFabric::conform_pass(const membership::PoolMap& map) {
  struct Move {
    StoredObject entry;
    ServerId to;
  };
  std::size_t copied = 0;
  std::size_t n;
  {
    std::shared_lock<std::shared_mutex> lk(membership_mu_);
    n = stores_.size();
  }
  for (ServerId s = 0; s < n; ++s) {
    ShardedObjectStore* from = store_ptr(s);
    // Collect first, act after: put/erase on the shard being iterated
    // would self-deadlock on its shared lock.
    std::vector<Move> moves;
    from->for_each([&](const StoredObject& entry) {
      ServerId home = home_under(map, entry.object.desc);
      if (home != kInvalidServer && home != s)
        moves.push_back({entry, home});
    });
    for (auto& m : moves) {
      if (store_ptr(m.to)->put(m.entry.object, m.entry.kind).ok())
        ++copied;
    }
  }
  return copied;
}

std::size_t ThreadFabric::retire_pass(const membership::PoolMap& map) {
  std::size_t erased = 0;
  std::size_t n;
  {
    std::shared_lock<std::shared_mutex> lk(membership_mu_);
    n = stores_.size();
  }
  for (ServerId s = 0; s < n; ++s) {
    ShardedObjectStore* from = store_ptr(s);
    std::vector<ObjectDescriptor> stale;
    from->for_each([&](const StoredObject& entry) {
      ServerId home = home_under(map, entry.object.desc);
      if (home != kInvalidServer && home != s)
        stale.push_back(entry.object.desc);
    });
    for (const auto& desc : stale) {
      // Only retire once the new home demonstrably holds the entry —
      // idempotent and safe to re-run after an interrupted migration.
      ServerId home = home_under(map, desc);
      if (store_ptr(home)->contains(desc) && from->erase(desc)) ++erased;
    }
  }
  return erased;
}

ServerId ThreadFabric::join_server() {
  membership::PoolMap next;
  ServerId id;
  {
    std::unique_lock<std::shared_mutex> lk(membership_mu_);
    id = static_cast<ServerId>(stores_.size());
    stores_.push_back(std::make_unique<ShardedObjectStore>(
        options_.server_capacity, options_.store_shards));
    if (!pool_dispatch_) return id;  // modulo routing: nothing to migrate
    next = map_;
    next.add_target(/*cabinet=*/0, /*node=*/static_cast<std::uint16_t>(id));
  }
  // Copy entries to the homes the JOINING map dictates while the old
  // map still routes, publish, then re-conform whatever raced in under
  // the old map before erasing stale copies: gets never miss.
  conform_pass(next);
  publish(std::move(next));
  membership::PoolMap published = pool_map_copy();
  conform_pass(published);
  retire_pass(published);
  {
    std::unique_lock<std::shared_mutex> lk(membership_mu_);
    (void)map_.set_state(id, membership::TargetState::kUp);
    map_version_.store(map_.version(), std::memory_order_release);
  }
  return id;
}

Status ThreadFabric::drain_server(ServerId target) {
  membership::PoolMap next;
  {
    std::unique_lock<std::shared_mutex> lk(membership_mu_);
    if (!pool_dispatch_)
      return Status::FailedPrecondition(
          "drain_server requires pool_dispatch routing");
    if (target >= stores_.size())
      return Status::FailedPrecondition("unknown server");
    next = map_;
    Status st = next.set_state(target, membership::TargetState::kDrain);
    if (!st.ok()) return st;
    if (next.placement_count() == 0)
      return Status::FailedPrecondition(
          "cannot drain the last placement-eligible target");
  }
  // Same copy-publish-erase dance as join: move everything off the
  // target under the drained ranking, cut routing over, sweep
  // stragglers that landed while the copy ran, then empty the target.
  conform_pass(next);
  publish(std::move(next));
  membership::PoolMap published = pool_map_copy();
  conform_pass(published);
  retire_pass(published);
  {
    std::unique_lock<std::shared_mutex> lk(membership_mu_);
    (void)map_.set_state(target, membership::TargetState::kDown);
    map_version_.store(map_.version(), std::memory_order_release);
  }
  return Status::Ok();
}

}  // namespace corec::staging
