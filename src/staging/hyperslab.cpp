#include "staging/hyperslab.hpp"

#include <cstring>

namespace corec::staging {
namespace {

// Walks all rows (fixed all-but-last coordinates) of `region` invoking
// fn(point_at_row_start, run_length).
template <typename Fn>
void for_each_row(const geom::BoundingBox& region, Fn&& fn) {
  const std::size_t dims = region.dims();
  geom::Point p = region.lo();
  const auto run =
      static_cast<std::size_t>(region.extent(dims - 1));
  for (;;) {
    fn(p, run);
    // Odometer over all dims except the last.
    std::size_t d = dims - 1;
    bool done = true;
    while (d-- > 0) {
      if (++p[d] <= region.hi()[d]) {
        done = false;
        break;
      }
      p[d] = region.lo()[d];
    }
    if (done) break;
  }
}

}  // namespace

Status copy_region(ByteSpan src, const geom::BoundingBox& src_box,
                   MutableByteSpan dst, const geom::BoundingBox& dst_box,
                   const geom::BoundingBox& region,
                   std::size_t element_size) {
  if (!src_box.contains(region) || !dst_box.contains(region)) {
    return Status::InvalidArgument("region not contained in boxes");
  }
  if (src.size() < src_box.volume() * element_size ||
      dst.size() < dst_box.volume() * element_size) {
    return Status::InvalidArgument("buffer too small for box");
  }
  if (region.dims() == 0) return Status::Ok();

  for_each_row(region, [&](const geom::Point& p, std::size_t run) {
    std::uint64_t so = geom::linear_offset(src_box, p) * element_size;
    std::uint64_t po = geom::linear_offset(dst_box, p) * element_size;
    std::memcpy(dst.data() + po, src.data() + so, run * element_size);
  });
  return Status::Ok();
}

StatusOr<Bytes> extract_region(ByteSpan src,
                               const geom::BoundingBox& src_box,
                               const geom::BoundingBox& region,
                               std::size_t element_size) {
  Bytes out(static_cast<std::size_t>(region.volume()) * element_size);
  COREC_RETURN_IF_ERROR(copy_region(src, src_box, MutableByteSpan(out),
                                    region, region, element_size));
  return out;
}

}  // namespace corec::staging
