#include "staging/object.hpp"

#include <sstream>

namespace corec::staging {

std::string ObjectDescriptor::to_string() const {
  std::ostringstream os;
  os << "var" << var << "@v" << version << box.to_string();
  if (shard != kWholeObject) os << "#" << shard;
  return os.str();
}

std::size_t DescriptorHash::operator()(const ObjectDescriptor& d) const {
  // FNV-style mixing over the identifying fields.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(d.var);
  mix(d.version);
  mix(d.shard);
  for (std::size_t i = 0; i < d.box.dims(); ++i) {
    mix(static_cast<std::uint64_t>(d.box.lo()[i]));
    mix(static_cast<std::uint64_t>(d.box.hi()[i]));
  }
  return static_cast<std::size_t>(h);
}

}  // namespace corec::staging
