// StagingService — the in-memory staging cluster (DataSpaces substitute).
// Hosts N staging servers with per-server object stores and service
// queues on a simulated interconnect, routes n-D object pieces to
// servers along a space-filling curve, executes put/get in virtual time,
// and delegates durability policy to a pluggable ResilienceScheme.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "erasure/codec.hpp"
#include "geom/partition.hpp"
#include "membership/pool_map.hpp"
#include "net/cost_model.hpp"
#include "net/queueing.hpp"
#include "net/topology.hpp"
#include "sfc/sfc.hpp"
#include "sim/simulation.hpp"
#include "staging/directory.hpp"
#include "staging/metadata.hpp"
#include "staging/object_store.hpp"
#include "staging/request.hpp"
#include "staging/scheme.hpp"

namespace corec::staging {

/// How objects are assigned to staging servers.
enum class PlacementMode : std::uint8_t {
  /// Static SFC key-range routing over the topology ring (the seed
  /// behaviour): deterministic for a fixed server count, but a resize
  /// reshuffles nearly every key range.
  kSfcRing = 0,
  /// Algorithmic placement over the versioned pool map (HRW hashing of
  /// the object's SFC key): elastic — joins and drains move only the
  /// minimal set of objects, and any holder of the map can compute the
  /// layout without a directory round-trip.
  kPoolMap = 1,
};

/// Construction-time configuration of a staging cluster.
struct ServiceOptions {
  /// Physical organization of the staging servers.
  net::Topology topology = net::Topology::flat(8, 4);
  /// Interconnect / CPU / PFS cost model.
  net::CostModel cost;
  /// Global n-D domain staged variables live in (required).
  geom::BoundingBox domain = geom::BoundingBox::cube(0, 0, 0, 255, 255, 255);
  /// Space-filling curve used for object->server routing.
  sfc::CurveKind curve = sfc::CurveKind::kHilbert;
  /// Algorithm 1 fitting knobs (element size, target object size).
  geom::FitOptions fit;
  /// Per-server memory capacity in bytes (0 = unlimited).
  std::size_t server_capacity = 0;
  /// Seed for all stochastic choices inside the service.
  std::uint64_t seed = 42;
  /// Object -> server assignment strategy (see PlacementMode).
  PlacementMode placement = PlacementMode::kSfcRing;
};

/// Counters for the end-to-end integrity machinery: every read, decode
/// input and recovery copy is checksum-verified; corrupt entries are
/// quarantined (dropped from their store) so the erasure/replica repair
/// paths treat them exactly like lost shards.
struct IntegrityStats {
  std::uint64_t checks = 0;       // payload verifications performed
  std::uint64_t mismatches = 0;   // verifications that failed
  std::uint64_t quarantined = 0;  // corrupt entries dropped pending repair
};

/// Result of probing one stored representation against its recorded
/// checksum.
enum class ShardHealth : std::uint8_t { kMissing, kOk, kCorrupt };

/// One staging server: its store, its service queue and liveness.
struct ServerState {
  explicit ServerState(std::size_t capacity) : store(capacity) {}
  ObjectStore store;
  net::ServiceQueue queue;
  bool alive = true;
  std::uint32_t failures = 0;  // times this identity has failed
};

/// The staging cluster. All operations advance virtual time through the
/// bound Simulation; none of them block real threads.
class StagingService {
 public:
  StagingService(ServiceOptions options, sim::Simulation* sim,
                 std::unique_ptr<ResilienceScheme> scheme);

  // ---- client API -------------------------------------------------------

  /// Writes `data` (row-major over `box`, fit.element_size bytes per
  /// point). The object is partitioned per Algorithm 1; each piece is
  /// routed to its primary server and protected by the scheme. Returns
  /// when all pieces are durable.
  OpResult put(VarId var, Version version, const geom::BoundingBox& box,
               ByteSpan data);

  /// Same write path with a phantom payload of box.volume()*element
  /// bytes — used by paper-scale benches.
  OpResult put_phantom(VarId var, Version version,
                       const geom::BoundingBox& box);

  /// Reads the region `box` of `var` at the newest version <= `version`
  /// into `out` (may be nullptr for phantom workloads; resized to the
  /// region size otherwise).
  OpResult get(VarId var, Version version, const geom::BoundingBox& box,
               Bytes* out);

  /// Signals the end of a time step (classification sweeps etc.).
  void end_time_step(Version step);

  // ---- failure control ----------------------------------------------------

  /// Kills a server: store dropped, queue reset, reads fail over.
  void kill_server(ServerId s);

  /// Brings an empty replacement online under the same identity.
  void replace_server(ServerId s);

  bool alive(ServerId s) const { return servers_[s].alive; }
  std::size_t num_alive() const;

  // ---- elastic membership -------------------------------------------------

  /// The versioned pool map describing the current server set. Under
  /// PlacementMode::kPoolMap it is the routing authority; under
  /// kSfcRing it still tracks membership for observability.
  const membership::PoolMap& pool_map() const { return pool_map_; }

  /// Adds a brand-new empty server (grows the cluster by one), marks it
  /// JOINING in a new map version and replicates the map. Returns the
  /// new server's id. The caller (membership::Manager) is responsible
  /// for rebalancing data onto it and flipping it UP.
  ServerId join_server();

  /// Transitions one pool target's lifecycle state in a new map version
  /// and replicates the map. FAILED_PRECONDITION on unknown targets or
  /// no-op transitions.
  Status set_target_state(ServerId s, membership::TargetState state);

  /// Pushes the current map through the metadata plane's op-log so
  /// followers (and clients, via the RPC redirect path) converge on it.
  /// Returns the replication completion time.
  SimTime replicate_map(SimTime now);

  /// HRW placement key of an object region (SFC key diffused through
  /// mix64 so nearby regions don't correlate in placement space).
  std::uint64_t placement_key(const geom::BoundingBox& box) const;

  /// First `count` alive targets of the HRW ranking for `box` under the
  /// current map (primary first). May return fewer than `count` when
  /// the map is small or degraded.
  std::vector<ServerId> placement_of(const geom::BoundingBox& box,
                                     std::size_t count) const;

  /// Placement group of size `n` for a stripe/replica set anchored at
  /// `primary`: slot 0 is forced to `primary`, the rest follow the HRW
  /// ranking (skipping the primary and dead servers), extended with any
  /// remaining alive servers as a last resort.
  std::vector<ServerId> placement_group(const geom::BoundingBox& box,
                                        ServerId primary,
                                        std::size_t n) const;

  // ---- scheme-facing primitives ------------------------------------------

  sim::Simulation& sim() { return *sim_; }
  const net::CostModel& cost() const { return options_.cost; }
  const net::Topology& topology() const { return options_.topology; }
  const ServiceOptions& options() const { return options_; }

  /// The metadata plane every directory read/write is routed through.
  /// Defaults to an in-process single-copy Directory; attach_metadata
  /// swaps in the replicated metadata service (src/meta/).
  MetadataPlane& directory() { return *meta_; }
  const MetadataPlane& directory() const { return *meta_; }

  /// Replaces the metadata plane (non-owning). Must be called before
  /// any traffic: entries already in the local plane are not migrated.
  void attach_metadata(MetadataPlane* meta);
  Rng& rng() { return rng_; }
  ResilienceScheme& scheme() { return *scheme_; }

  std::size_t num_servers() const { return servers_.size(); }
  ServerState& server(ServerId s) { return servers_[s]; }
  const ServerState& server(ServerId s) const { return servers_[s]; }

  /// Logical ring (position -> physical id) and its inverse.
  const std::vector<ServerId>& ring() const { return ring_; }
  std::size_t ring_position(ServerId s) const { return ring_pos_[s]; }

  /// The ring successor `steps` ahead of `s`.
  ServerId ring_next(ServerId s, std::size_t steps = 1) const;

  /// Primary server for an object region (SFC routing; skips dead
  /// servers by walking the ring).
  ServerId route(const geom::BoundingBox& box) const;

  /// Charges `service_time` of work on server `s` starting no earlier
  /// than `arrival`; returns completion time.
  SimTime serve_at(ServerId s, SimTime arrival, SimTime service) {
    return servers_[s].queue.serve(arrival, service);
  }

  /// Stores an object representation on a server (scheme primitive).
  Status store_at(ServerId s, DataObject obj, StoredKind kind) {
    std::size_t before = servers_[s].store.total_bytes();
    Status st = servers_[s].store.put(std::move(obj), kind);
    stored_total_ += servers_[s].store.total_bytes() - before;
    return st;
  }

  /// Removes an entry from a server store.
  void remove_at(ServerId s, const ObjectDescriptor& desc) {
    std::size_t before = servers_[s].store.total_bytes();
    servers_[s].store.erase(desc);
    stored_total_ -= before - servers_[s].store.total_bytes();
  }

  /// Verifies the entry `desc` on server `s` against `expected` (its
  /// CRC32C recorded in the directory; 0 = nothing recorded, accept).
  /// A mismatching entry is quarantined — erased from the store so
  /// every downstream path sees it as one more erasure to repair
  /// around. Phantom entries always verify clean.
  ShardHealth probe_stored(ServerId s, const ObjectDescriptor& desc,
                           std::uint32_t expected);

  /// Fault injection: flips one bit of the stored bytes of `desc` on
  /// `s` (see ObjectStore::flip_byte). Returns false if there is no
  /// real payload there to corrupt.
  bool corrupt_at(ServerId s, const ObjectDescriptor& desc,
                  std::size_t offset);

  const IntegrityStats& integrity() const { return integrity_; }

  /// Cached Reed-Solomon codec for stripe geometry (k, m).
  const erasure::Codec& codec(std::uint32_t k, std::uint32_t m);

  // ---- storage accounting --------------------------------------------------

  /// Sum of true payload bytes of all registered whole objects.
  std::size_t logical_bytes() const;
  /// Sum of bytes resident in all server stores (O(1), incremental).
  std::size_t stored_bytes() const;
  /// Same sum recomputed from the stores (O(servers); invariant check).
  std::size_t stored_bytes_recomputed() const;
  /// logical / stored (1.0 = no overhead; paper's storage efficiency).
  double storage_efficiency() const;

 private:
  // One fitted piece read. Only the part of the piece inside
  // `requested` is shipped (and, in degraded mode, reconstructed);
  // `fraction` of the piece's bytes is charged. Returns completion
  // time; hands the piece's real bytes out through `piece_out` when
  // non-null — a replicated read is a refcount bump on the holder's
  // buffer, an encoded read gathers the chunk views into one exact
  // allocation.
  StatusOr<SimTime> read_piece(const ObjectDescriptor& desc,
                               const geom::BoundingBox& requested,
                               SimTime start, PayloadBuffer* piece_out,
                               Breakdown* bd);

  // Degraded read of an encoded object with missing chunks.
  StatusOr<SimTime> read_degraded(const ObjectDescriptor& desc,
                                  const ObjectLocation& loc,
                                  double fraction, SimTime start,
                                  PayloadBuffer* piece_out, Breakdown* bd);

  // Common body of put / put_phantom.
  OpResult put_impl(VarId var, Version version,
                    const geom::BoundingBox& box, ByteSpan data,
                    bool phantom);

  ServiceOptions options_;
  sim::Simulation* sim_;
  std::unique_ptr<ResilienceScheme> scheme_;
  sfc::SfcMapper mapper_;
  LocalMetadata local_meta_;
  MetadataPlane* meta_;  // points at local_meta_ unless attached
  std::vector<ServerState> servers_;
  std::vector<ServerId> ring_;
  std::vector<std::size_t> ring_pos_;
  membership::PoolMap pool_map_;
  Rng rng_;
  IntegrityStats integrity_;
  std::size_t stored_total_ = 0;  // incremental sum of store bytes
  std::uint64_t sfc_key_span_;    // max SFC key + 1, for range routing
  std::unordered_map<std::uint64_t, std::unique_ptr<erasure::Codec>>
      codecs_;
};

}  // namespace corec::staging
