#include "staging/metadata.hpp"

namespace corec::staging {

SimTime LocalMetadata::upsert(const ObjectDescriptor& desc,
                              ObjectLocation location) {
  dir_.upsert(desc, std::move(location));
  return 0;
}

bool LocalMetadata::remove(const ObjectDescriptor& desc) {
  return dir_.remove(desc);
}

const ObjectLocation* LocalMetadata::find(
    const ObjectDescriptor& desc) const {
  return dir_.find(desc);
}

std::vector<ObjectDescriptor> LocalMetadata::query(
    VarId var, Version version, const geom::BoundingBox& region) const {
  return dir_.query(var, version, region);
}

std::vector<ObjectDescriptor> LocalMetadata::query_latest(
    VarId var, Version version, const geom::BoundingBox& region) const {
  return dir_.query_latest(var, version, region);
}

const ObjectDescriptor* LocalMetadata::find_entity(
    VarId var, const geom::BoundingBox& box) const {
  return dir_.find_entity(var, box);
}

std::size_t LocalMetadata::size() const { return dir_.size(); }

void LocalMetadata::for_each(const VisitFn& fn) const {
  dir_.for_each(fn);
}

}  // namespace corec::staging
