// ThreadFabric — the real-thread dispatcher for a staging deployment
// (as opposed to the virtual-time StagingService, which is
// single-threaded by construction). It hosts one ShardedObjectStore
// per staging server plus one entity-sharded metadata directory, and
// drives put/get/erase through them from many client threads:
//
//   * synchronously — clients call put/get/erase from their own
//     threads; lock striping keeps unrelated keys contention-free and
//     reads hand back refcounted payload views (zero-copy);
//   * asynchronously — ops are dispatched onto the fabric's worker
//     pool with a completion callback, and drain() joins them.
//
// Contention health is observable: shard_metrics() aggregates lock
// acquisitions, contended acquisitions and max shard occupancy across
// every store and the directory, the real-thread companion to
// payload_metrics().
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "staging/sharded_store.hpp"

namespace corec::staging {

/// Construction-time configuration of a ThreadFabric.
struct FabricOptions {
  std::size_t store_shards = 0;      // per-server shards (0 = auto)
  std::size_t directory_shards = 0;  // metadata shards (0 = auto)
  std::size_t server_capacity = 0;   // bytes per server (0 = unlimited)
  std::size_t workers = 0;           // async dispatch threads (0 = auto)
};

/// Operation counters (relaxed; exact at quiesce).
struct FabricStatsSnapshot {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t erases = 0;
  std::uint64_t put_failures = 0;  // capacity rejections etc.
  std::uint64_t get_misses = 0;    // NotFound reads
};

class ThreadFabric {
 public:
  explicit ThreadFabric(std::size_t num_servers,
                        FabricOptions options = {});

  ThreadFabric(const ThreadFabric&) = delete;
  ThreadFabric& operator=(const ThreadFabric&) = delete;

  // ---- synchronous ops (any client thread) ------------------------------

  Status put(ServerId server, DataObject object, StoredKind kind);

  /// Zero-copy read: the payload inside the returned entry is a
  /// refcounted view of the stored buffer.
  StatusOr<StoredObject> get(ServerId server,
                             const ObjectDescriptor& desc) const;

  bool erase(ServerId server, const ObjectDescriptor& desc);

  // ---- routed conveniences ----------------------------------------------

  /// Deterministic hash placement of a descriptor onto a server (the
  /// fabric has no SFC; simulation-faithful routing stays with
  /// StagingService).
  ServerId route(const ObjectDescriptor& desc) const;

  Status put(DataObject object, StoredKind kind);
  StatusOr<StoredObject> get(const ObjectDescriptor& desc) const;
  bool erase(const ObjectDescriptor& desc);

  // ---- async dispatch ----------------------------------------------------

  /// Dispatches the op onto the worker pool; `done` (optional) runs on
  /// the worker after the op completes.
  void async_put(ServerId server, DataObject object, StoredKind kind,
                 std::function<void(Status)> done = nullptr);
  void async_get(ServerId server, ObjectDescriptor desc,
                 std::function<void(StatusOr<StoredObject>)> done);
  void async_erase(ServerId server, ObjectDescriptor desc,
                   std::function<void(bool)> done = nullptr);

  /// Blocks until every dispatched op has completed.
  void drain() { pool_.wait_idle(); }

  // ---- structure access ----------------------------------------------------

  std::size_t num_servers() const { return stores_.size(); }
  ShardedObjectStore& store(ServerId server) { return *stores_[server]; }
  const ShardedObjectStore& store(ServerId server) const {
    return *stores_[server];
  }
  ShardedDirectory& directory() { return directory_; }
  const ShardedDirectory& directory() const { return directory_; }
  ThreadPool& pool() { return pool_; }

  // ---- rollups (never take a lock) ---------------------------------------

  std::size_t total_objects() const;
  std::size_t total_bytes() const;
  FabricStatsSnapshot stats() const;

  /// Aggregated over every server store and the directory.
  ShardMetricsSnapshot shard_metrics() const;

 private:
  std::vector<std::unique_ptr<ShardedObjectStore>> stores_;
  ShardedDirectory directory_;
  ThreadPool pool_;
  mutable std::atomic<std::uint64_t> puts_{0};
  mutable std::atomic<std::uint64_t> gets_{0};
  mutable std::atomic<std::uint64_t> erases_{0};
  mutable std::atomic<std::uint64_t> put_failures_{0};
  mutable std::atomic<std::uint64_t> get_misses_{0};
};

}  // namespace corec::staging
