// ThreadFabric — the real-thread dispatcher for a staging deployment
// (as opposed to the virtual-time StagingService, which is
// single-threaded by construction). It hosts one ShardedObjectStore
// per staging server plus one entity-sharded metadata directory, and
// drives put/get/erase through them from many client threads:
//
//   * synchronously — clients call put/get/erase from their own
//     threads; lock striping keeps unrelated keys contention-free and
//     reads hand back refcounted payload views (zero-copy);
//   * asynchronously — ops are dispatched onto the fabric's worker
//     pool with a completion callback, and drain() joins them.
//
// Contention health is observable: shard_metrics() aggregates lock
// acquisitions, contended acquisitions and max shard occupancy across
// every store and the directory, the real-thread companion to
// payload_metrics().
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/buffer.hpp"
#include "common/thread_pool.hpp"
#include "membership/pool_map.hpp"
#include "staging/sharded_store.hpp"

namespace corec::staging {

/// Construction-time configuration of a ThreadFabric.
struct FabricOptions {
  std::size_t store_shards = 0;      // per-server shards (0 = auto)
  std::size_t directory_shards = 0;  // metadata shards (0 = auto)
  std::size_t server_capacity = 0;   // bytes per server (0 = unlimited)
  std::size_t workers = 0;           // async dispatch threads (0 = auto)
  /// Route through the versioned pool map (HRW placement) instead of
  /// the static modulo hash. Required for join_server()/drain_server()
  /// migration semantics; off by default so existing deployments keep
  /// their byte-identical placement.
  bool pool_dispatch = false;
};

/// Operation counters (relaxed; exact at quiesce).
struct FabricStatsSnapshot {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t erases = 0;
  std::uint64_t put_failures = 0;  // capacity rejections etc.
  std::uint64_t get_misses = 0;    // NotFound reads
};

class ThreadFabric {
 public:
  explicit ThreadFabric(std::size_t num_servers,
                        FabricOptions options = {});

  ThreadFabric(const ThreadFabric&) = delete;
  ThreadFabric& operator=(const ThreadFabric&) = delete;

  // ---- synchronous ops (any client thread) ------------------------------

  Status put(ServerId server, DataObject object, StoredKind kind);

  /// Zero-copy read: the payload inside the returned entry is a
  /// refcounted view of the stored buffer.
  StatusOr<StoredObject> get(ServerId server,
                             const ObjectDescriptor& desc) const;

  bool erase(ServerId server, const ObjectDescriptor& desc);

  // ---- routed conveniences ----------------------------------------------

  /// Deterministic hash placement of a descriptor onto a server (the
  /// fabric has no SFC; simulation-faithful routing stays with
  /// StagingService).
  ServerId route(const ObjectDescriptor& desc) const;

  Status put(DataObject object, StoredKind kind);
  StatusOr<StoredObject> get(const ObjectDescriptor& desc) const;
  bool erase(const ObjectDescriptor& desc);

  // ---- async dispatch ----------------------------------------------------

  /// Dispatches the op onto the worker pool; `done` (optional) runs on
  /// the worker after the op completes.
  void async_put(ServerId server, DataObject object, StoredKind kind,
                 std::function<void(Status)> done = nullptr);
  void async_get(ServerId server, ObjectDescriptor desc,
                 std::function<void(StatusOr<StoredObject>)> done);
  void async_erase(ServerId server, ObjectDescriptor desc,
                   std::function<void(bool)> done = nullptr);

  /// Blocks until every dispatched op has completed.
  void drain() { pool_.wait_idle(); }

  // ---- elastic membership (pool_dispatch mode) ---------------------------
  //
  // Transitions are caller-serialized: run one join/drain at a time.
  // Routed ops stay live throughout — migration copies entries to their
  // new homes FIRST, publishes the new map, re-conforms whatever raced
  // in under the old map, and only then erases stale copies, so a
  // concurrent routed get never misses.

  /// Newest published map version (lock-free; the RPC server's
  /// staleness fast path).
  std::uint64_t map_version() const {
    return map_version_.load(std::memory_order_acquire);
  }

  /// Snapshot of the published map.
  membership::PoolMap pool_map_copy() const;

  /// Serialized form of the published map (for NOT_MY_SHARD redirect
  /// bodies and MAP_GET responses).
  Bytes map_blob() const;

  /// Grows the fabric by one server and — in pool_dispatch mode —
  /// rebalances the minimal set of entries onto it (JOINING -> migrate
  /// -> UP, two map versions). Returns the new server id.
  ServerId join_server();

  /// Migrates every entry off `target` and retires it (DRAIN ->
  /// migrate -> DOWN, two map versions). The store object stays in
  /// place (ids are dense and stable) but ends empty and unroutable.
  Status drain_server(ServerId target);

  // ---- structure access ----------------------------------------------------

  std::size_t num_servers() const {
    std::shared_lock<std::shared_mutex> lk(membership_mu_);
    return stores_.size();
  }
  ShardedObjectStore& store(ServerId server) { return *store_ptr(server); }
  const ShardedObjectStore& store(ServerId server) const {
    return *store_ptr(server);
  }
  ShardedDirectory& directory() { return directory_; }
  const ShardedDirectory& directory() const { return directory_; }
  ThreadPool& pool() { return pool_; }

  // ---- rollups (never take a lock) ---------------------------------------

  std::size_t total_objects() const;
  std::size_t total_bytes() const;
  FabricStatsSnapshot stats() const;

  /// Aggregated over every server store and the directory.
  ShardMetricsSnapshot shard_metrics() const;

 private:
  /// Store pointer lookup under the membership lock. The pointee is
  /// stable across stores_ growth (unique_ptr targets don't move), so
  /// callers may keep using the raw pointer after the lock drops.
  ShardedObjectStore* store_ptr(ServerId server) const {
    std::shared_lock<std::shared_mutex> lk(membership_mu_);
    return stores_[server].get();
  }
  /// Routed home of `desc`'s base entity under `map`.
  ServerId home_under(const membership::PoolMap& map,
                      const ObjectDescriptor& desc) const;
  /// Copies every entry whose home under `map` differs from where it
  /// sits to that home. Returns the number of entries copied.
  std::size_t conform_pass(const membership::PoolMap& map);
  /// Erases entries whose home under `map` differs from where they sit,
  /// but only once the home already holds them (idempotent, safe after
  /// conform_pass). Returns the number erased.
  std::size_t retire_pass(const membership::PoolMap& map);
  /// Publishes `next` as the routing map (unique lock + version store).
  void publish(membership::PoolMap next);

  std::vector<std::unique_ptr<ShardedObjectStore>> stores_;
  ShardedDirectory directory_;
  ThreadPool pool_;
  FabricOptions options_;
  bool pool_dispatch_;
  /// Guards stores_ growth and map_ publication; routed ops take it
  /// shared for the pointer/ranking lookup only.
  mutable std::shared_mutex membership_mu_;
  membership::PoolMap map_;
  std::atomic<std::uint64_t> map_version_{0};
  mutable std::atomic<std::uint64_t> puts_{0};
  mutable std::atomic<std::uint64_t> gets_{0};
  mutable std::atomic<std::uint64_t> erases_{0};
  mutable std::atomic<std::uint64_t> put_failures_{0};
  mutable std::atomic<std::uint64_t> get_misses_{0};
};

}  // namespace corec::staging
