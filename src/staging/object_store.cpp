#include "staging/object_store.hpp"

namespace corec::staging {

Status ObjectStore::put(DataObject object, StoredKind kind) {
  std::size_t new_bytes = object.logical_size;
  std::size_t replaced = 0;
  auto it = entries_.find(object.desc);
  if (it != entries_.end()) replaced = it->second.object.logical_size;
  if (capacity_ != 0 &&
      total_bytes_ - replaced + new_bytes > capacity_) {
    return Status::ResourceExhausted("object store over capacity");
  }
  if (it != entries_.end()) {
    total_bytes_ -= replaced;
    kind_bytes_[static_cast<std::size_t>(it->second.kind)] -= replaced;
    it->second = StoredObject{std::move(object), kind};
  } else {
    ObjectDescriptor key = object.desc;
    entries_.emplace(key, StoredObject{std::move(object), kind});
  }
  total_bytes_ += new_bytes;
  kind_bytes_[static_cast<std::size_t>(kind)] += new_bytes;
  return Status::Ok();
}

const StoredObject* ObjectStore::find(const ObjectDescriptor& desc) const {
  auto it = entries_.find(desc);
  return it == entries_.end() ? nullptr : &it->second;
}

bool ObjectStore::erase(const ObjectDescriptor& desc) {
  auto it = entries_.find(desc);
  if (it == entries_.end()) return false;
  total_bytes_ -= it->second.object.logical_size;
  kind_bytes_[static_cast<std::size_t>(it->second.kind)] -=
      it->second.object.logical_size;
  entries_.erase(it);
  return true;
}

bool ObjectStore::flip_byte(const ObjectDescriptor& desc,
                            std::size_t offset) {
  auto it = entries_.find(desc);
  if (it == entries_.end()) return false;
  DataObject& object = it->second.object;
  if (object.phantom || object.data.empty()) return false;
  // mutable_span() detaches to a private copy when the payload is
  // shared with sibling replicas, so injected corruption stays local
  // to this holder; the generation bump invalidates any cached CRC.
  MutableByteSpan bytes = object.data.mutable_span();
  bytes[offset % bytes.size()] ^= 0x40;
  return true;
}

void ObjectStore::clear() {
  entries_.clear();
  total_bytes_ = 0;
  for (auto& b : kind_bytes_) b = 0;
}

void ObjectStore::for_each(
    const std::function<void(const StoredObject&)>& fn) const {
  for (const auto& [desc, stored] : entries_) fn(stored);
}

}  // namespace corec::staging
