#include "staging/directory.hpp"

#include <algorithm>

namespace corec::staging {

void Directory::upsert(const ObjectDescriptor& desc,
                       ObjectLocation location) {
  auto [it, inserted] = locations_.insert_or_assign(desc, location);
  (void)it;
  if (inserted) {
    by_version_[{desc.var, desc.version}].push_back(desc);
    entities_[entity_key(desc.var, desc.box)] = desc;
  }
}

bool Directory::remove(const ObjectDescriptor& desc) {
  auto it = locations_.find(desc);
  if (it == locations_.end()) return false;
  locations_.erase(it);
  auto vit = by_version_.find({desc.var, desc.version});
  if (vit != by_version_.end()) {
    auto& vec = vit->second;
    vec.erase(std::remove(vec.begin(), vec.end(), desc), vec.end());
    if (vec.empty()) by_version_.erase(vit);
  }
  auto eit = entities_.find(entity_key(desc.var, desc.box));
  if (eit != entities_.end() && eit->second == desc) {
    entities_.erase(eit);
  }
  return true;
}

const ObjectDescriptor* Directory::find_entity(
    VarId var, const geom::BoundingBox& box) const {
  auto it = entities_.find(entity_key(var, box));
  return it == entities_.end() ? nullptr : &it->second;
}

const ObjectLocation* Directory::find(const ObjectDescriptor& desc) const {
  auto it = locations_.find(desc);
  return it == locations_.end() ? nullptr : &it->second;
}

ObjectLocation* Directory::find_mutable(const ObjectDescriptor& desc) {
  auto it = locations_.find(desc);
  return it == locations_.end() ? nullptr : &it->second;
}

std::vector<ObjectDescriptor> Directory::query(
    VarId var, Version version, const geom::BoundingBox& region) const {
  std::vector<ObjectDescriptor> out;
  auto it = by_version_.find({var, version});
  if (it == by_version_.end()) return out;
  for (const auto& desc : it->second) {
    if (desc.box.intersects(region)) out.push_back(desc);
  }
  return out;
}

std::vector<ObjectDescriptor> Directory::query_latest(
    VarId var, Version version, const geom::BoundingBox& region) const {
  // Scan versions from newest (<= version) to oldest; keep descriptors
  // whose box intersects the still-uncovered part of the region. The
  // shadow test subtracts each accepted box from the uncovered set;
  // when fragmentation exceeds a cap (pathological overlap patterns)
  // we fall back to including every intersecting descriptor — callers
  // assemble oldest-first, so duplicated coverage is still correct.
  constexpr std::size_t kFragmentCap = 64;
  std::vector<ObjectDescriptor> out;
  std::vector<geom::BoundingBox> uncovered{region};
  bool exact = true;
  auto lo = by_version_.lower_bound({var, 0});
  auto hi = by_version_.upper_bound({var, version});
  std::vector<const std::vector<ObjectDescriptor>*> buckets;
  for (auto it = lo; it != hi; ++it) buckets.push_back(&it->second);
  for (auto bit = buckets.rbegin(); bit != buckets.rend(); ++bit) {
    if (exact && uncovered.empty()) break;
    for (const auto& desc : **bit) {
      if (!exact) {
        if (desc.box.intersects(region)) out.push_back(desc);
        continue;
      }
      bool hit = false;
      for (const auto& piece : uncovered) {
        if (desc.box.intersects(piece)) {
          hit = true;
          break;
        }
      }
      if (!hit) continue;
      out.push_back(desc);
      std::vector<geom::BoundingBox> next;
      for (const auto& piece : uncovered) {
        piece.subtract(desc.box, &next);
      }
      uncovered = std::move(next);
      if (uncovered.empty()) break;
      if (uncovered.size() > kFragmentCap) {
        exact = false;  // degrade to include-all for the rest
      }
    }
  }
  return out;
}

}  // namespace corec::staging
