// Resilience-scheme plug-in interface. The staging service owns routing,
// queueing and the read path; a scheme decides how each object is made
// durable (replicas vs erasure chunks), reacts to failures/replacements,
// and runs end-of-step housekeeping (classification, pool transitions,
// recovery sweeps).
#pragma once

#include <string>

#include "common/types.hpp"
#include "staging/object.hpp"
#include "staging/request.hpp"

namespace corec::staging {

class StagingService;

/// Base class for resilience schemes (None/Replication/Erasure/Hybrid
/// baselines and CoREC itself).
class ResilienceScheme {
 public:
  virtual ~ResilienceScheme() = default;

  /// Display name, e.g. "corec", "replication".
  virtual std::string name() const = 0;

  /// Called once by the service after construction.
  virtual void bind(StagingService* service) { service_ = service; }

  /// Makes `obj` durable. Called after the client's payload has arrived
  /// at `primary` at virtual time `arrived`. The scheme stores the
  /// primary representation (copy or chunks), applies redundancy,
  /// charges the involved server queues, updates the directory, and
  /// returns the time at which the write is durable.
  ///
  /// `previous` is non-null when this write updates an existing region
  /// entity (same variable and box, older version); the scheme must
  /// retire the previous representation (stores + directory).
  virtual SimTime protect(const DataObject& obj, ServerId primary,
                          const ObjectDescriptor* previous,
                          SimTime arrived, Breakdown* bd) = 0;

  /// Invoked before the service reads `desc` (recover-on-access hook).
  virtual void on_access(const ObjectDescriptor& desc, SimTime now) {
    (void)desc;
    (void)now;
  }

  /// A server died and its store was cleared.
  virtual void on_server_failed(ServerId s, SimTime now) {
    (void)s;
    (void)now;
  }

  /// An empty replacement took over the failed server's identity.
  virtual void on_server_replaced(ServerId s, SimTime now) {
    (void)s;
    (void)now;
  }

  /// End-of-time-step housekeeping at virtual time `now`.
  virtual void end_of_step(Version step, SimTime now) {
    (void)step;
    (void)now;
  }

  /// Objects still awaiting repair (0 when fully recovered).
  virtual std::size_t repair_backlog() const { return 0; }

 protected:
  StagingService* service_ = nullptr;
};

}  // namespace corec::staging
