// Metadata-plane facade. The staging service and the resilience schemes
// never touch a Directory directly; every metadata read and mutation is
// routed through this interface, so the rest of the codebase is agnostic
// to where metadata lives. Two implementations exist:
//   * LocalMetadata (here): a plain in-process Directory — the original
//     single-copy behaviour, zero overhead, no failure domain.
//   * meta::MetaClient (src/meta/): a primary + K-follower replicated
//     metadata service with an op-log, compacting snapshots and
//     deterministic failover.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "staging/directory.hpp"

namespace corec::staging {

/// Abstract metadata plane. Mirrors the Directory API so existing call
/// sites (`service.directory().upsert(...)` etc.) are routed through the
/// facade without changes.
class MetadataPlane {
 public:
  using VisitFn =
      std::function<void(const ObjectDescriptor&, const ObjectLocation&)>;

  virtual ~MetadataPlane() = default;

  // ---- mutations (primary path) -----------------------------------------
  /// Registers or updates a location. Returns the virtual time at which
  /// the mutation is acknowledged durable by the metadata plane (0 for
  /// the local plane: the update is durable the instant it happens).
  virtual SimTime upsert(const ObjectDescriptor& desc,
                         ObjectLocation location) = 0;
  /// Removes an entry; true if it existed.
  virtual bool remove(const ObjectDescriptor& desc) = 0;

  // ---- reads --------------------------------------------------------------
  virtual const ObjectLocation* find(const ObjectDescriptor& desc) const = 0;
  virtual std::vector<ObjectDescriptor> query(
      VarId var, Version version, const geom::BoundingBox& region) const = 0;
  virtual std::vector<ObjectDescriptor> query_latest(
      VarId var, Version version, const geom::BoundingBox& region) const = 0;
  virtual const ObjectDescriptor* find_entity(
      VarId var, const geom::BoundingBox& box) const = 0;
  virtual std::size_t size() const = 0;
  virtual void for_each(const VisitFn& fn) const = 0;

  /// The authoritative directory state (snapshotting, audits). For the
  /// replicated plane this is the current primary's materialized view.
  virtual const Directory& state() const = 0;

  // ---- liveness -----------------------------------------------------------
  /// Notifications from the hosting cluster: a staging server died /
  /// was replaced. The replicated plane reacts (failover, catch-up).
  virtual void on_server_failed(ServerId s, SimTime now) {
    (void)s;
    (void)now;
  }
  virtual void on_server_replaced(ServerId s, SimTime now) {
    (void)s;
    (void)now;
  }

  /// True while the plane can serve metadata operations (the local plane
  /// always can; the replicated plane can while a primary exists).
  virtual bool available() const { return true; }

  // ---- membership map -----------------------------------------------------
  /// Replicates a serialized pool map (see membership::PoolMap) through
  /// the plane so followers and clients converge on it. The local plane
  /// just retains the newest blob; the replicated plane appends a
  /// kMapTransition record to the op-log and streams it. Returns the
  /// replication completion time.
  virtual SimTime replicate_map(const Bytes& blob, std::uint64_t version,
                                SimTime now) {
    (void)blob;
    (void)version;
    return now;
  }
  /// Newest pool-map version the plane has replicated (0 = none).
  virtual std::uint64_t map_version() const { return 0; }
};

/// Default single-copy metadata plane: a plain in-process Directory.
class LocalMetadata final : public MetadataPlane {
 public:
  SimTime upsert(const ObjectDescriptor& desc,
                 ObjectLocation location) override;
  bool remove(const ObjectDescriptor& desc) override;
  const ObjectLocation* find(const ObjectDescriptor& desc) const override;
  std::vector<ObjectDescriptor> query(
      VarId var, Version version,
      const geom::BoundingBox& region) const override;
  std::vector<ObjectDescriptor> query_latest(
      VarId var, Version version,
      const geom::BoundingBox& region) const override;
  const ObjectDescriptor* find_entity(
      VarId var, const geom::BoundingBox& box) const override;
  std::size_t size() const override;
  void for_each(const VisitFn& fn) const override;
  const Directory& state() const override { return dir_; }
  SimTime replicate_map(const Bytes& blob, std::uint64_t version,
                        SimTime now) override {
    if (version > map_version_) {
      map_blob_ = blob;
      map_version_ = version;
    }
    return now;
  }
  std::uint64_t map_version() const override { return map_version_; }
  const Bytes& map_blob() const { return map_blob_; }

 private:
  Directory dir_;
  Bytes map_blob_;
  std::uint64_t map_version_ = 0;
};

}  // namespace corec::staging
