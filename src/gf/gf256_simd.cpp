#include "gf/gf256_simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "gf/gf256.hpp"

namespace corec::gf {
namespace detail {

// Defined in gf256_ssse3.cpp / gf256_avx2.cpp when the build compiles
// them (per-file -mssse3 / -mavx2; see src/gf/CMakeLists.txt). Only
// ever called after a CPUID check.
#if COREC_GF_HAVE_SSSE3
const Kernels& ssse3_kernels();
#endif
#if COREC_GF_HAVE_AVX2
const Kernels& avx2_kernels();
#endif

namespace {

/// Table-free multiply (shift-and-reduce); constexpr so the nibble
/// tables are built at compile time.
constexpr std::uint8_t cmul(unsigned a, unsigned b) {
  unsigned acc = 0;
  while (b) {
    if (b & 1) acc ^= a;
    a <<= 1;
    if (a & 0x100) a ^= kPrimitivePoly;
    b >>= 1;
  }
  return static_cast<std::uint8_t>(acc);
}

constexpr NibbleTables make_nibble_tables() {
  NibbleTables t{};
  for (unsigned c = 0; c < 256; ++c) {
    for (unsigned i = 0; i < 16; ++i) {
      t.lo[c][i] = cmul(c, i);
      t.hi[c][i] = cmul(c, i << 4);
    }
  }
  return t;
}

constexpr NibbleTables kNibbleTables = make_nibble_tables();

// --- portable kernel ----------------------------------------------------

void xor_portable(const std::uint8_t* src, std::uint8_t* dst,
                  std::size_t n) {
  std::size_t i = 0;
  // Word-wide main loop; memcpy keeps it alias/alignment safe and the
  // compiler lowers it to plain 64-bit loads/stores.
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, src + i, 8);
    std::memcpy(&b, dst + i, 8);
    b ^= a;
    std::memcpy(dst + i, &b, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void mul_add_portable(std::uint8_t c, const std::uint8_t* src,
                      std::uint8_t* dst, std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    xor_portable(src, dst, n);
    return;
  }
  const auto& row = tables().mul[c];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    dst[i] ^= row[src[i]];
    dst[i + 1] ^= row[src[i + 1]];
    dst[i + 2] ^= row[src[i + 2]];
    dst[i + 3] ^= row[src[i + 3]];
  }
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

void mul_portable(std::uint8_t c, const std::uint8_t* src,
                  std::uint8_t* dst, std::size_t n) {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    std::memmove(dst, src, n);
    return;
  }
  const auto& row = tables().mul[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

void mul_add_multi_portable(const std::uint8_t* coeffs,
                            const std::uint8_t* const* srcs,
                            std::size_t nsrc, std::uint8_t* dst,
                            std::size_t n, bool accumulate) {
  if (n == 0) return;
  // Cache-blocked: walk dst in L1-sized chunks so the nsrc
  // accumulation sweeps hit a resident destination instead of
  // re-streaming it from memory nsrc times.
  constexpr std::size_t kBlock = 8192;
  for (std::size_t off = 0; off < n; off += kBlock) {
    std::size_t len = n - off < kBlock ? n - off : kBlock;
    std::size_t j = 0;
    if (!accumulate) {
      mul_portable(coeffs[0], srcs[0] + off, dst + off, len);
      j = 1;
    }
    for (; j < nsrc; ++j) {
      mul_add_portable(coeffs[j], srcs[j] + off, dst + off, len);
    }
  }
}

constexpr Kernels kPortableKernels = {"portable", mul_add_portable,
                                     mul_portable, xor_portable,
                                     mul_add_multi_portable};

// --- dispatch -----------------------------------------------------------

bool cpu_supports(std::string_view isa) {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (isa == "ssse3") return __builtin_cpu_supports("ssse3");
  if (isa == "avx2") return __builtin_cpu_supports("avx2");
#else
  (void)isa;
#endif
  return false;
}

const Kernels* best_supported() {
#if COREC_GF_HAVE_AVX2
  if (cpu_supports("avx2")) return &avx2_kernels();
#endif
#if COREC_GF_HAVE_SSSE3
  if (cpu_supports("ssse3")) return &ssse3_kernels();
#endif
  return &kPortableKernels;
}

const Kernels* select_kernels() {
  const char* env = std::getenv("COREC_GF_KERNEL");
  if (env != nullptr && env[0] != '\0') {
    if (const Kernels* k = kernel_by_name(env)) return k;
    std::fprintf(stderr,
                 "corec/gf: COREC_GF_KERNEL=%s unavailable on this "
                 "CPU/build; using best supported kernel\n",
                 env);
  }
  return best_supported();
}

std::atomic<const Kernels*> g_kernels{nullptr};

}  // namespace

const NibbleTables& nibble_tables() { return kNibbleTables; }

const Kernels* kernel_by_name(std::string_view name) {
  if (name == "portable") return &kPortableKernels;
#if COREC_GF_HAVE_SSSE3
  if (name == "ssse3" && cpu_supports("ssse3")) return &ssse3_kernels();
#endif
#if COREC_GF_HAVE_AVX2
  if (name == "avx2" && cpu_supports("avx2")) return &avx2_kernels();
#endif
  return nullptr;
}

std::vector<const Kernels*> available_kernels() {
  std::vector<const Kernels*> out{&kPortableKernels};
#if COREC_GF_HAVE_SSSE3
  if (cpu_supports("ssse3")) out.push_back(&ssse3_kernels());
#endif
#if COREC_GF_HAVE_AVX2
  if (cpu_supports("avx2")) out.push_back(&avx2_kernels());
#endif
  return out;
}

void override_kernels(const Kernels* k) {
  g_kernels.store(k != nullptr ? k : select_kernels(),
                  std::memory_order_release);
}

}  // namespace detail

const Kernels& kernels() {
  const Kernels* k = detail::g_kernels.load(std::memory_order_acquire);
  if (k == nullptr) {
    // Benign race: every thread resolves the same table.
    k = detail::select_kernels();
    detail::g_kernels.store(k, std::memory_order_release);
  }
  return *k;
}

const char* kernel_name() { return kernels().name; }

}  // namespace corec::gf
