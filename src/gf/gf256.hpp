// GF(2^8) arithmetic over the AES/Rijndael-compatible field used by
// Reed-Solomon coding. Provides scalar ops backed by log/exp tables plus
// wide region operations (multiply-accumulate over buffers) that dominate
// encode/decode cost. This is our substitute for the Jerasure library's
// galois_* primitives. Region ops dispatch to the fastest kernel the CPU
// supports (AVX2/SSSE3 split-nibble PSHUFB or a portable table walk; see
// gf256_simd.hpp).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace corec::gf {

/// Primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the standard
/// choice for storage Reed-Solomon codes (matches Jerasure's GF(2^8)).
inline constexpr unsigned kPrimitivePoly = 0x11d;

/// Field order and multiplicative group order.
inline constexpr unsigned kFieldSize = 256;
inline constexpr unsigned kGroupOrder = 255;

namespace detail {

/// Compile-time construction of exp/log tables for generator alpha = 2.
struct Tables {
  std::array<std::uint8_t, 512> exp{};  // doubled to avoid mod in mul
  std::array<std::uint8_t, 256> log{};
  // mul[a][b] = a*b. 64 KiB dense product table backing the scalar
  // mul() and the portable region kernel; the SIMD kernels work from
  // the 8 KiB split-nibble tables instead (gf256_simd.hpp) and never
  // touch this table.
  std::array<std::array<std::uint8_t, 256>, 256> mul{};
  std::array<std::uint8_t, 256> inv{};

  constexpr Tables() {
    unsigned x = 1;
    for (unsigned i = 0; i < kGroupOrder; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= kPrimitivePoly;
    }
    for (unsigned i = kGroupOrder; i < 512; ++i) {
      exp[i] = exp[i - kGroupOrder];
    }
    log[0] = 0;  // undefined; guarded by callers
    for (unsigned a = 0; a < 256; ++a) {
      for (unsigned b = 0; b < 256; ++b) {
        mul[a][b] =
            (a == 0 || b == 0)
                ? 0
                : exp[static_cast<unsigned>(log[a]) + log[b]];
      }
    }
    inv[0] = 0;  // undefined; guarded by callers
    for (unsigned a = 1; a < 256; ++a) {
      inv[a] = exp[kGroupOrder - log[a]];
    }
  }
};

const Tables& tables();

}  // namespace detail

/// Field addition (= subtraction) is XOR.
constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) {
  return a ^ b;
}

/// Field multiplication via the dense 256x256 table.
inline std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  return detail::tables().mul[a][b];
}

/// Multiplicative inverse. Precondition: a != 0.
std::uint8_t inv(std::uint8_t a);

/// Division a / b. Precondition: b != 0.
std::uint8_t div(std::uint8_t a, std::uint8_t b);

/// Exponentiation a^e (e >= 0).
std::uint8_t pow(std::uint8_t a, unsigned e);

/// dst[i] ^= c * src[i] for all i. The Reed-Solomon inner loop;
/// dispatched to the selected SIMD/portable kernel.
void region_mul_add(std::uint8_t c, std::span<const std::uint8_t> src,
                    std::span<std::uint8_t> dst);

/// dst[i] = c * src[i] for all i.
void region_mul(std::uint8_t c, std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst);

/// dst[i] ^= src[i] for all i (the c == 1 fast path).
void region_xor(std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst);

/// Fused multi-source accumulate: dst[i] ^= sum_j coeffs[j]*srcs[j][i],
/// produced in a single pass over dst. Every srcs[j] must hold
/// dst.size() readable bytes and must not overlap dst. This is the
/// Reed-Solomon parity row evaluated without re-reading the parity
/// buffer once per data block.
void region_mul_add_multi(const std::uint8_t* coeffs,
                          const std::uint8_t* const* srcs, std::size_t k,
                          std::span<std::uint8_t> dst);

/// Fused multi-source overwrite: dst[i] = sum_j coeffs[j]*srcs[j][i]
/// (no prior zero-fill of dst needed). Same contract as
/// region_mul_add_multi otherwise.
void region_mul_multi(const std::uint8_t* coeffs,
                      const std::uint8_t* const* srcs, std::size_t k,
                      std::span<std::uint8_t> dst);

}  // namespace corec::gf
