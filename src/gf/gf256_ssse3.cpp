// SSSE3 split-nibble GF(2^8) region kernels (PSHUFB, 16 B/iteration).
// Compiled with -mssse3; reached only after the dispatcher's CPUID
// check (see gf256_simd.cpp).
#include <cstddef>
#include <cstdint>
#include <tmmintrin.h>

#include "gf/gf256_simd.hpp"

namespace corec::gf::detail {
namespace {

/// Product of one 16-byte lane: (tl, th) are the coefficient's nibble
/// tables; returns c * s per byte.
inline __m128i mul_lane(__m128i tl, __m128i th, __m128i mask, __m128i s) {
  __m128i lo = _mm_and_si128(s, mask);
  __m128i hi = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
  return _mm_xor_si128(_mm_shuffle_epi8(tl, lo), _mm_shuffle_epi8(th, hi));
}

void mul_add_ssse3(std::uint8_t c, const std::uint8_t* src,
                   std::uint8_t* dst, std::size_t n) {
  if (c == 0) return;
  const NibbleTables& t = nibble_tables();
  const __m128i tl =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
  const __m128i th =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    d = _mm_xor_si128(d, mul_lane(tl, th, mask, s));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  mul_add_nibble_tail(t, c, src + i, dst + i, n - i);
}

void mul_ssse3(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
               std::size_t n) {
  const NibbleTables& t = nibble_tables();
  const __m128i tl =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
  const __m128i th =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     mul_lane(tl, th, mask, s));
  }
  mul_nibble_tail(t, c, src + i, dst + i, n - i);
}

void xor_ssse3(const std::uint8_t* src, std::uint8_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, s));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void mul_add_multi_ssse3(const std::uint8_t* coeffs,
                         const std::uint8_t* const* srcs, std::size_t nsrc,
                         std::uint8_t* dst, std::size_t n,
                         bool accumulate) {
  const NibbleTables& t = nibble_tables();
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i acc =
        accumulate
            ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i))
            : _mm_setzero_si128();
    for (std::size_t j = 0; j < nsrc; ++j) {
      const std::uint8_t c = coeffs[j];
      __m128i tl =
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
      __m128i th =
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
      __m128i s = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(srcs[j] + i));
      acc = _mm_xor_si128(acc, mul_lane(tl, th, mask, s));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc);
  }
  if (i < n) {
    std::size_t rem = n - i;
    if (!accumulate) mul_nibble_tail(t, coeffs[0], srcs[0] + i, dst + i, rem);
    for (std::size_t j = accumulate ? 0 : 1; j < nsrc; ++j) {
      mul_add_nibble_tail(t, coeffs[j], srcs[j] + i, dst + i, rem);
    }
  }
}

constexpr Kernels kSsse3Kernels = {"ssse3", mul_add_ssse3, mul_ssse3,
                                   xor_ssse3, mul_add_multi_ssse3};

}  // namespace

const Kernels& ssse3_kernels() { return kSsse3Kernels; }

}  // namespace corec::gf::detail
