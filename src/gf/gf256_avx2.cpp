// AVX2 split-nibble GF(2^8) region kernels (VPSHUFB, 32 B/iteration).
// The 16-entry nibble tables are broadcast across both 128-bit lanes so
// one VPSHUFB performs 32 table lookups. Compiled with -mavx2; reached
// only after the dispatcher's CPUID check (see gf256_simd.cpp).
#include <cstddef>
#include <cstdint>
#include <immintrin.h>

#include "gf/gf256_simd.hpp"

namespace corec::gf::detail {
namespace {

inline __m256i load_table(const std::uint8_t (&row)[16]) {
  return _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(row)));
}

/// Product of one 32-byte lane: (tl, th) hold the coefficient's nibble
/// tables in both 128-bit halves; returns c * s per byte.
inline __m256i mul_lane(__m256i tl, __m256i th, __m256i mask, __m256i s) {
  __m256i lo = _mm256_and_si256(s, mask);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi64(s, 4), mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(tl, lo),
                          _mm256_shuffle_epi8(th, hi));
}

void mul_add_avx2(std::uint8_t c, const std::uint8_t* src,
                  std::uint8_t* dst, std::size_t n) {
  if (c == 0) return;
  const NibbleTables& t = nibble_tables();
  const __m256i tl = load_table(t.lo[c]);
  const __m256i th = load_table(t.hi[c]);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    d = _mm256_xor_si256(d, mul_lane(tl, th, mask, s));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  mul_add_nibble_tail(t, c, src + i, dst + i, n - i);
}

void mul_avx2(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
              std::size_t n) {
  const NibbleTables& t = nibble_tables();
  const __m256i tl = load_table(t.lo[c]);
  const __m256i th = load_table(t.hi[c]);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul_lane(tl, th, mask, s));
  }
  mul_nibble_tail(t, c, src + i, dst + i, n - i);
}

void xor_avx2(const std::uint8_t* src, std::uint8_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, s));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void mul_add_multi_avx2(const std::uint8_t* coeffs,
                        const std::uint8_t* const* srcs, std::size_t nsrc,
                        std::uint8_t* dst, std::size_t n, bool accumulate) {
  const NibbleTables& t = nibble_tables();
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i acc = accumulate ? _mm256_loadu_si256(
                                   reinterpret_cast<const __m256i*>(dst + i))
                             : _mm256_setzero_si256();
    for (std::size_t j = 0; j < nsrc; ++j) {
      const std::uint8_t c = coeffs[j];
      __m256i s = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(srcs[j] + i));
      acc = _mm256_xor_si256(
          acc, mul_lane(load_table(t.lo[c]), load_table(t.hi[c]), mask, s));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc);
  }
  if (i < n) {
    std::size_t rem = n - i;
    if (!accumulate) mul_nibble_tail(t, coeffs[0], srcs[0] + i, dst + i, rem);
    for (std::size_t j = accumulate ? 0 : 1; j < nsrc; ++j) {
      mul_add_nibble_tail(t, coeffs[j], srcs[j] + i, dst + i, rem);
    }
  }
}

constexpr Kernels kAvx2Kernels = {"avx2", mul_add_avx2, mul_avx2,
                                  xor_avx2, mul_add_multi_avx2};

}  // namespace

const Kernels& avx2_kernels() { return kAvx2Kernels; }

}  // namespace corec::gf::detail
