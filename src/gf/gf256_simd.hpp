// Vectorized GF(2^8) kernel layer with runtime CPU dispatch.
//
// Region operations (the Reed-Solomon inner loops) are routed through a
// kernel vtable selected once at startup: AVX2 (VPSHUFB, 32 B/iter) >
// SSSE3 (PSHUFB, 16 B/iter) > portable 64-bit scalar. The SIMD kernels
// use the split-nibble technique: for a coefficient c, the products
// c*x factor through the two 16-entry tables
//
//   lo[c][i] = c * i          (products of the low nibble)
//   hi[c][i] = c * (i << 4)   (products of the high nibble)
//
// and c*b = lo[c][b & 0xF] ^ hi[c][b >> 4] because multiplication by c
// is linear over GF(2). PSHUFB evaluates 16 (VPSHUFB: 32) such table
// lookups per instruction. The full table set is 256 coefficients x
// 2 x 16 B = 8 KiB — it fits in L1, unlike the 64 KiB dense product
// table the portable path walks.
//
// Selection can be forced with COREC_GF_KERNEL=portable|ssse3|avx2
// (falls back to the best supported kernel, with a warning, if the
// requested one is unavailable on this CPU/build).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace corec::gf {

/// Dispatch table of region kernels. All functions tolerate n == 0 and
/// arbitrary (mis)alignment of src/dst; src and dst must not overlap.
struct Kernels {
  const char* name;

  /// dst[i] ^= c * src[i].
  void (*mul_add)(std::uint8_t c, const std::uint8_t* src,
                  std::uint8_t* dst, std::size_t n);

  /// dst[i] = c * src[i].
  void (*mul)(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
              std::size_t n);

  /// dst[i] ^= src[i].
  void (*xor_into)(const std::uint8_t* src, std::uint8_t* dst,
                   std::size_t n);

  /// Fused multi-source op: dst[i] (^)= sum_j coeffs[j] * srcs[j][i],
  /// one pass over dst per call (accumulate=false overwrites dst).
  /// Callers guarantee nsrc >= 1 and every coeffs[j] != 0.
  void (*mul_add_multi)(const std::uint8_t* coeffs,
                        const std::uint8_t* const* srcs, std::size_t nsrc,
                        std::uint8_t* dst, std::size_t n, bool accumulate);
};

/// The kernel table selected for this process (CPUID + COREC_GF_KERNEL
/// override, resolved once on first use).
const Kernels& kernels();

/// Name of the selected kernel: "portable", "ssse3" or "avx2".
const char* kernel_name();

namespace detail {

/// Split-nibble product tables (8 KiB): lo[c][i] = c*i,
/// hi[c][i] = c*(i<<4). 16-byte row alignment for direct SIMD loads.
struct NibbleTables {
  alignas(16) std::uint8_t lo[256][16];
  alignas(16) std::uint8_t hi[256][16];
};

const NibbleTables& nibble_tables();

/// Scalar split-nibble tail used by the SIMD kernels for the last
/// sub-vector bytes (keeps the dense 64 KiB table out of their
/// working set).
inline void mul_add_nibble_tail(const NibbleTables& t, std::uint8_t c,
                                const std::uint8_t* src, std::uint8_t* dst,
                                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] ^= t.lo[c][src[i] & 0x0f] ^ t.hi[c][src[i] >> 4];
  }
}

inline void mul_nibble_tail(const NibbleTables& t, std::uint8_t c,
                            const std::uint8_t* src, std::uint8_t* dst,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = t.lo[c][src[i] & 0x0f] ^ t.hi[c][src[i] >> 4];
  }
}

/// Kernel lookup by name; nullptr when the kernel is not compiled into
/// this build or not supported by the running CPU.
const Kernels* kernel_by_name(std::string_view name);

/// Every kernel this build can run on this CPU (portable always
/// included). For differential tests and per-kernel benchmarks.
std::vector<const Kernels*> available_kernels();

/// Test hook: force the dispatched kernel table (nullptr restores
/// normal dispatch). Not thread-safe against concurrent region ops.
void override_kernels(const Kernels* k);

}  // namespace detail
}  // namespace corec::gf
