#include "gf/gf256.hpp"

#include <cassert>
#include <cstring>

namespace corec::gf {
namespace detail {

const Tables& tables() {
  // Built once on first use; ~80 KiB, immutable afterwards.
  static const Tables t;
  return t;
}

}  // namespace detail

std::uint8_t inv(std::uint8_t a) {
  assert(a != 0 && "inverse of zero");
  return detail::tables().inv[a];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  assert(b != 0 && "division by zero");
  if (a == 0) return 0;
  const auto& t = detail::tables();
  unsigned la = t.log[a];
  unsigned lb = t.log[b];
  return t.exp[la + kGroupOrder - lb];
}

std::uint8_t pow(std::uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = detail::tables();
  unsigned le = (static_cast<unsigned>(t.log[a]) * e) % kGroupOrder;
  return t.exp[le];
}

void region_xor(std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  std::size_t n = src.size();
  std::size_t i = 0;
  // Word-wide main loop; memcpy keeps it alias/alignment safe and the
  // compiler lowers it to plain 64-bit loads/stores.
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, src.data() + i, 8);
    std::memcpy(&b, dst.data() + i, 8);
    b ^= a;
    std::memcpy(dst.data() + i, &b, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void region_mul_add(std::uint8_t c, std::span<const std::uint8_t> src,
                    std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  if (c == 0) return;
  if (c == 1) {
    region_xor(src, dst);
    return;
  }
  const auto& row = detail::tables().mul[c];
  std::size_t n = src.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    dst[i] ^= row[src[i]];
    dst[i + 1] ^= row[src[i + 1]];
    dst[i + 2] ^= row[src[i + 2]];
    dst[i + 3] ^= row[src[i + 3]];
  }
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

void region_mul(std::uint8_t c, std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  if (c == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (c == 1) {
    std::memcpy(dst.data(), src.data(), src.size());
    return;
  }
  const auto& row = detail::tables().mul[c];
  std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

}  // namespace corec::gf
