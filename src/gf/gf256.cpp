#include "gf/gf256.hpp"

#include <cassert>
#include <cstring>

#include "gf/gf256_simd.hpp"

namespace corec::gf {
namespace detail {

const Tables& tables() {
  // Built once on first use; ~80 KiB, immutable afterwards.
  static const Tables t;
  return t;
}

}  // namespace detail

std::uint8_t inv(std::uint8_t a) {
  assert(a != 0 && "inverse of zero");
  return detail::tables().inv[a];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  assert(b != 0 && "division by zero");
  if (a == 0) return 0;
  const auto& t = detail::tables();
  unsigned la = t.log[a];
  unsigned lb = t.log[b];
  return t.exp[la + kGroupOrder - lb];
}

std::uint8_t pow(std::uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = detail::tables();
  unsigned le = (static_cast<unsigned>(t.log[a]) * e) % kGroupOrder;
  return t.exp[le];
}

void region_xor(std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  kernels().xor_into(src.data(), dst.data(), dst.size());
}

void region_mul_add(std::uint8_t c, std::span<const std::uint8_t> src,
                    std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  if (c == 0) return;
  if (c == 1) {
    region_xor(src, dst);
    return;
  }
  kernels().mul_add(c, src.data(), dst.data(), dst.size());
}

void region_mul(std::uint8_t c, std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  // Empty vectors hand out a null data(); memset/memcpy declare their
  // pointers nonnull, so bail before the dispatch on c.
  if (dst.empty()) return;
  if (c == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (c == 1) {
    std::memcpy(dst.data(), src.data(), src.size());
    return;
  }
  kernels().mul(c, src.data(), dst.data(), dst.size());
}

namespace {

/// Drops zero coefficients (they contribute nothing and the kernels
/// require nonzero rows). Returns the compacted count.
inline std::size_t compact_nonzero(const std::uint8_t* coeffs,
                                   const std::uint8_t* const* srcs,
                                   std::size_t k, std::uint8_t* c_out,
                                   const std::uint8_t** s_out) {
  std::size_t nz = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (coeffs[j] != 0) {
      c_out[nz] = coeffs[j];
      s_out[nz] = srcs[j];
      ++nz;
    }
  }
  return nz;
}

}  // namespace

void region_mul_add_multi(const std::uint8_t* coeffs,
                          const std::uint8_t* const* srcs, std::size_t k,
                          std::span<std::uint8_t> dst) {
  assert(k <= kGroupOrder);
  std::uint8_t c[kGroupOrder];
  const std::uint8_t* s[kGroupOrder];
  std::size_t nz = compact_nonzero(coeffs, srcs, k, c, s);
  if (nz == 0 || dst.empty()) return;
  kernels().mul_add_multi(c, s, nz, dst.data(), dst.size(), true);
}

void region_mul_multi(const std::uint8_t* coeffs,
                      const std::uint8_t* const* srcs, std::size_t k,
                      std::span<std::uint8_t> dst) {
  assert(k <= kGroupOrder);
  std::uint8_t c[kGroupOrder];
  const std::uint8_t* s[kGroupOrder];
  std::size_t nz = compact_nonzero(coeffs, srcs, k, c, s);
  if (dst.empty()) return;
  if (nz == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  kernels().mul_add_multi(c, s, nz, dst.data(), dst.size(), false);
}

}  // namespace corec::gf
