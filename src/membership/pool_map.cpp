#include "membership/pool_map.hpp"

#include <algorithm>
#include <sstream>

#include "common/buffer.hpp"

namespace corec::membership {
namespace {

/// Format byte guarding decode against stale/foreign blobs.
constexpr std::uint8_t kPoolMapFormat = 1;

}  // namespace

const char* to_string(TargetState s) {
  switch (s) {
    case TargetState::kUp: return "UP";
    case TargetState::kJoining: return "JOINING";
    case TargetState::kDrain: return "DRAIN";
    case TargetState::kDown: return "DOWN";
  }
  return "UNKNOWN";
}

PoolMap PoolMap::initial(std::size_t count, std::size_t nodes_per_cabinet,
                         std::size_t servers_per_node) {
  PoolMap map;
  if (nodes_per_cabinet == 0) nodes_per_cabinet = 1;
  if (servers_per_node == 0) servers_per_node = 1;
  map.version_ = 1;
  map.targets_.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    PoolTarget t;
    t.id = static_cast<ServerId>(s);
    t.node = static_cast<std::uint16_t>((s / servers_per_node) %
                                        nodes_per_cabinet);
    t.cabinet = static_cast<std::uint16_t>(
        s / (servers_per_node * nodes_per_cabinet));
    t.state = TargetState::kUp;
    t.state_version = 1;
    map.targets_.push_back(t);
  }
  return map;
}

std::vector<ServerId> PoolMap::placement_targets() const {
  std::vector<ServerId> out;
  out.reserve(targets_.size());
  for (const PoolTarget& t : targets_) {
    if (t.state == TargetState::kUp || t.state == TargetState::kJoining) {
      out.push_back(t.id);
    }
  }
  return out;
}

std::size_t PoolMap::placement_count() const {
  std::size_t n = 0;
  for (const PoolTarget& t : targets_) {
    if (t.state == TargetState::kUp || t.state == TargetState::kJoining) ++n;
  }
  return n;
}

TargetState PoolMap::state_of(ServerId id) const {
  if (id >= targets_.size()) return TargetState::kDown;
  return targets_[id].state;
}

bool PoolMap::readable(ServerId id) const {
  return state_of(id) != TargetState::kDown;
}

ServerId PoolMap::add_target(std::uint16_t cabinet, std::uint16_t node) {
  PoolTarget t;
  t.id = static_cast<ServerId>(targets_.size());
  t.cabinet = cabinet;
  t.node = node;
  t.state = TargetState::kJoining;
  t.state_version = ++version_;
  targets_.push_back(t);
  return t.id;
}

Status PoolMap::set_state(ServerId id, TargetState state) {
  if (id >= targets_.size()) {
    return Status::FailedPrecondition("unknown pool target");
  }
  if (targets_[id].state == state) {
    return Status::FailedPrecondition("target already in requested state");
  }
  targets_[id].state = state;
  targets_[id].state_version = ++version_;
  return Status::Ok();
}

void PoolMap::encode(std::vector<std::uint8_t>* out) const {
  BufferWriter w(out);
  w.reserve(1 + 8 + 4 + targets_.size() * 17);
  w.put<std::uint8_t>(kPoolMapFormat);
  w.put<std::uint64_t>(version_);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(targets_.size()));
  for (const PoolTarget& t : targets_) {
    w.put<std::uint32_t>(t.id);
    w.put<std::uint16_t>(t.cabinet);
    w.put<std::uint16_t>(t.node);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(t.state));
    w.put<std::uint64_t>(t.state_version);
  }
}

StatusOr<PoolMap> PoolMap::decode(const std::uint8_t* data,
                                  std::size_t size) {
  BufferReader r(ByteSpan(data, size));
  std::uint8_t format = 0;
  COREC_RETURN_IF_ERROR(r.get(&format));
  if (format != kPoolMapFormat) {
    return Status::InvalidArgument("bad pool map format byte");
  }
  PoolMap map;
  std::uint32_t count = 0;
  COREC_RETURN_IF_ERROR(r.get(&map.version_));
  COREC_RETURN_IF_ERROR(r.get(&count));
  if (static_cast<std::size_t>(count) * 17 > r.remaining()) {
    return Status::InvalidArgument("pool map truncated");
  }
  map.targets_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PoolTarget t;
    std::uint8_t state = 0;
    COREC_RETURN_IF_ERROR(r.get(&t.id));
    COREC_RETURN_IF_ERROR(r.get(&t.cabinet));
    COREC_RETURN_IF_ERROR(r.get(&t.node));
    COREC_RETURN_IF_ERROR(r.get(&state));
    COREC_RETURN_IF_ERROR(r.get(&t.state_version));
    if (t.id != i) {
      return Status::InvalidArgument("pool map target ids not dense");
    }
    if (state > static_cast<std::uint8_t>(TargetState::kDown)) {
      return Status::InvalidArgument("bad pool target state");
    }
    t.state = static_cast<TargetState>(state);
    map.targets_.push_back(t);
  }
  return map;
}

bool PoolMap::adopt(const PoolMap& other) {
  if (other.version_ <= version_) return false;
  version_ = other.version_;
  targets_ = other.targets_;
  return true;
}

std::uint64_t PoolMap::digest() const {
  std::vector<std::uint8_t> bytes;
  encode(&bytes);
  return fnv1a(ByteSpan(bytes.data(), bytes.size()));
}

std::string PoolMap::summary() const {
  std::size_t up = 0, joining = 0, drain = 0, down = 0;
  for (const PoolTarget& t : targets_) {
    switch (t.state) {
      case TargetState::kUp: ++up; break;
      case TargetState::kJoining: ++joining; break;
      case TargetState::kDrain: ++drain; break;
      case TargetState::kDown: ++down; break;
    }
  }
  std::ostringstream os;
  os << "v" << version_ << ": " << up << " up / " << joining
     << " joining / " << drain << " drain / " << down << " down";
  return os.str();
}

}  // namespace corec::membership
