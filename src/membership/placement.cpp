#include "membership/placement.hpp"

#include <algorithm>

namespace corec::membership {

std::vector<ServerId> place(const PoolMap& map, std::uint64_t object_key,
                            std::size_t count) {
  struct Scored {
    std::uint64_t score;
    ServerId id;
  };
  std::vector<Scored> scored;
  scored.reserve(map.size());
  for (const PoolTarget& t : map.targets()) {
    if (t.state != TargetState::kUp && t.state != TargetState::kJoining) {
      continue;
    }
    scored.push_back({placement_score(object_key, t.id), t.id});
  }
  if (count > scored.size()) count = scored.size();
  // Highest score first; ties (vanishingly rare with 64-bit scores)
  // break toward the lower id so the ranking stays total.
  auto better = [](const Scored& a, const Scored& b) {
    return a.score != b.score ? a.score > b.score : a.id < b.id;
  };
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(count),
                    scored.end(), better);
  std::vector<ServerId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(scored[i].id);
  return out;
}

ServerId place_one(const PoolMap& map, std::uint64_t object_key,
                   std::size_t index) {
  std::vector<ServerId> ranked = place(map, object_key, index + 1);
  if (ranked.size() <= index) return kInvalidServer;
  return ranked[index];
}

}  // namespace corec::membership
