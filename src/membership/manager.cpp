#include "membership/manager.hpp"

#include <algorithm>
#include <cassert>

#include "common/failpoint.hpp"
#include "resilience/primitives.hpp"
#include "staging/request.hpp"

namespace corec::membership {

using staging::Breakdown;
using staging::DataObject;
using staging::ObjectDescriptor;
using staging::ObjectLocation;
using staging::Protection;
using staging::ShardHealth;
using staging::ShardIndex;
using staging::StoredKind;
using staging::StoredObject;

const char* to_string(TransitionKind k) {
  switch (k) {
    case TransitionKind::kJoin: return "join";
    case TransitionKind::kDrain: return "drain";
    case TransitionKind::kEvict: return "evict";
    case TransitionKind::kRebalance: return "rebalance";
  }
  return "?";
}

Manager::Manager(staging::StagingService* service, ManagerOptions options)
    : service_(service),
      options_(options),
      workflow_(service, options.replication_group, options.workflow) {}

void Manager::start(TransitionKind kind, SimTime now) {
  assert(!active_ && "one membership transition at a time");
  cur_ = TransitionStats{};
  cur_.kind = kind;
  cur_.started = now;
  stall_until_ = now;
  if (auto fp = COREC_FAILPOINT("member.join.stall")) {
    stall_until_ =
        now + static_cast<SimTime>(fp.arg != 0 ? fp.arg : 1'000'000);
  }
  worklist_.clear();
  next_ = 0;
  active_ = true;
}

void Manager::build_worklist() {
  // Every whole object currently registered. The conform pass no-ops
  // objects whose placement did not change, so scanning everything
  // costs only directory iteration; minimal movement comes from the
  // HRW ranking, not from pre-filtering.
  service_->directory().for_each(
      [this](const ObjectDescriptor& desc, const ObjectLocation&) {
        if (desc.shard == staging::kWholeObject) worklist_.push_back(desc);
      });
}

ServerId Manager::begin_join(SimTime now) {
  start(TransitionKind::kJoin, now);
  ServerId id = service_->join_server();
  cur_.target = id;
  build_worklist();
  return id;
}

Status Manager::begin_drain(ServerId target, SimTime now) {
  if (active_) {
    return Status::FailedPrecondition("membership transition in flight");
  }
  if (service_->pool_map().state_of(target) != TargetState::kUp) {
    return Status::FailedPrecondition("drain target is not UP");
  }
  if (service_->pool_map().placement_count() <= 1) {
    return Status::FailedPrecondition(
        "cannot drain the last placement-eligible target");
  }
  start(TransitionKind::kDrain, now);
  cur_.target = target;
  Status st = service_->set_target_state(target, TargetState::kDrain);
  assert(st.ok());
  (void)st;
  build_worklist();
  return Status::Ok();
}

Status Manager::begin_evict(ServerId target, SimTime now) {
  if (active_) {
    return Status::FailedPrecondition("membership transition in flight");
  }
  if (target >= service_->num_servers()) {
    return Status::FailedPrecondition("unknown eviction target");
  }
  if (service_->pool_map().state_of(target) == TargetState::kDown) {
    return Status::FailedPrecondition("eviction target already DOWN");
  }
  start(TransitionKind::kEvict, now);
  cur_.target = target;
  // Liveness first (store dropped, directory failover hooks run), then
  // the membership decision: DOWN in a new map version.
  if (service_->alive(target)) service_->kill_server(target);
  Status st = service_->set_target_state(target, TargetState::kDown);
  assert(st.ok());
  (void)st;
  build_worklist();
  return Status::Ok();
}

Status Manager::begin_rebalance(SimTime now) {
  if (active_) {
    return Status::FailedPrecondition("membership transition in flight");
  }
  start(TransitionKind::kRebalance, now);
  build_worklist();
  return Status::Ok();
}

bool Manager::step(SimTime now) {
  if (!active_) return false;
  SimTime t = std::max(now, stall_until_);
  std::size_t done = 0;
  while (next_ < worklist_.size() && done < options_.batch_objects) {
    if (auto fp = COREC_FAILPOINT("member.rebuild.kill")) {
      // The rebuild worker dies mid-sweep. Every object conformed so
      // far is fully moved and registered; the rest still read from
      // their old (directory-recorded) homes, so nothing is lost —
      // begin_rebalance() resumes the sweep.
      cur_.aborted = true;
      finish(t, /*complete=*/false);
      return false;
    }
    t = std::max(t, conform_object(worklist_[next_], t));
    ++next_;
    ++done;
    ++cur_.objects_scanned;
  }
  if (next_ >= worklist_.size()) {
    finish(t, /*complete=*/true);
    return false;
  }
  return true;
}

SimTime Manager::run_to_completion(SimTime now) {
  while (step(now)) {
    now = std::max(now, cur_.finished);
  }
  return history_.empty() ? now : history_.back().finished;
}

void Manager::finish(SimTime t, bool complete) {
  if (complete) {
    if (cur_.kind == TransitionKind::kJoin) {
      // Inbound rebalance done: the joiner serves as a full member.
      Status st = service_->set_target_state(cur_.target, TargetState::kUp);
      assert(st.ok());
      (void)st;
    } else if (cur_.kind == TransitionKind::kDrain) {
      // Outbound migration done: nothing places on or reads from the
      // drained target anymore.
      Status st =
          service_->set_target_state(cur_.target, TargetState::kDown);
      assert(st.ok());
      (void)st;
    }
  }
  cur_.finished = t;
  cur_.complete = complete;
  cur_.map_version = service_->pool_map().version();
  history_.push_back(cur_);
  active_ = false;
}

SimTime Manager::conform_object(const ObjectDescriptor& desc, SimTime now) {
  const ObjectLocation* locp = service_->directory().find(desc);
  if (locp == nullptr) return now;  // retired since the scan
  // Copy: the upserts below invalidate the pointer.
  ObjectLocation loc = *locp;
  if (loc.protection == Protection::kEncoded) {
    return conform_encoded(desc, loc, now);
  }
  return conform_replicated(desc, loc, now);
}

SimTime Manager::conform_replicated(const ObjectDescriptor& desc,
                                    const ObjectLocation& loc, SimTime now) {
  const auto& cost = service_->cost();
  const std::size_t count = 1 + loc.replicas.size();
  std::vector<ServerId> desired = service_->placement_of(desc.box, count);
  if (desired.size() < count) {
    ++cur_.objects_skipped;  // degraded below the replication level
    return now;
  }

  std::vector<ServerId> old_holders;
  old_holders.push_back(loc.primary);
  old_holders.insert(old_holders.end(), loc.replicas.begin(),
                     loc.replicas.end());
  const bool same_primary = desired[0] == loc.primary;
  const bool same_set =
      std::is_permutation(desired.begin(), desired.end(),
                          old_holders.begin(), old_holders.end());
  if (same_primary && same_set) return now;  // already conformed

  // A verified surviving whole copy to transfer from.
  ServerId source = kInvalidServer;
  for (ServerId h : old_holders) {
    if (h == kInvalidServer || h >= service_->num_servers() ||
        !service_->alive(h)) {
      continue;
    }
    if (service_->probe_stored(h, desc, loc.object_checksum) ==
        ShardHealth::kOk) {
      source = h;
      break;
    }
  }
  if (source == kInvalidServer) {
    ++cur_.objects_skipped;  // every copy lost; nothing to migrate
    return now;
  }

  // Throttle: migration yields to client encode traffic by contending
  // for the source group's encoding token.
  SimTime start = workflow_.acquire(source, now);
  cur_.token_wait += start - now;

  bool moved = false;
  SimTime done = start;
  for (std::size_t i = 0; i < desired.size(); ++i) {
    ServerId target = desired[i];
    const StoredKind kind =
        i == 0 ? StoredKind::kPrimary : StoredKind::kReplica;
    const StoredObject* held = service_->server(target).store.find(desc);
    if (held != nullptr) {
      if (held->kind != kind) {
        // Role flip only (e.g. replica promoted to primary): restamp
        // the local entry, no bytes move.
        DataObject copy = held->object;
        Status st = service_->store_at(target, std::move(copy), kind);
        assert(st.ok());
        (void)st;
      }
      continue;
    }
    // Copy from the verified source.
    const StoredObject* stored = service_->server(source).store.find(desc);
    assert(stored != nullptr);
    SimTime read_service =
        cost.request_overhead + cost.copy_time(loc.logical_size);
    SimTime t1 =
        service_->serve_at(source, start + cost.link_latency, read_service);
    SimTime xfer = cost.transfer_time(loc.logical_size);
    SimTime write_service = cost.copy_time(loc.logical_size);
    SimTime t2 = service_->serve_at(target, t1 + xfer, write_service);
    DataObject copy = stored->object;
    Status st = service_->store_at(target, std::move(copy), kind);
    assert(st.ok());
    (void)st;
    cur_.bytes_moved += loc.logical_size;
    moved = true;
    done = std::max(done, t2);
  }

  // Publish the new placement, then retire stale copies: a concurrent
  // reader either sees the old record (old copies still present) or
  // the new one (new copies already written) — never a miss.
  ObjectLocation fresh = loc;
  fresh.primary = desired[0];
  fresh.replicas.assign(desired.begin() + 1, desired.end());
  SimTime meta_ack = service_->directory().upsert(desc, fresh);
  done = std::max(done + cost.metadata_op, meta_ack);
  for (ServerId h : old_holders) {
    if (h == kInvalidServer || h >= service_->num_servers() ||
        !service_->alive(h)) {
      continue;
    }
    if (std::find(desired.begin(), desired.end(), h) == desired.end()) {
      service_->remove_at(h, desc);
    }
  }
  if (moved) ++cur_.objects_moved;
  workflow_.release(source, done);
  return done;
}

SimTime Manager::conform_encoded(const ObjectDescriptor& desc,
                                 const ObjectLocation& loc, SimTime now) {
  const auto& cost = service_->cost();
  const std::size_t n = loc.k + loc.m;
  std::vector<ServerId> desired = service_->placement_of(desc.box, n);
  if (desired.size() < n) {
    ++cur_.objects_skipped;  // cannot hold a full stripe right now
    return now;
  }
  if (std::equal(desired.begin(), desired.end(),
                 loc.stripe_servers.begin(), loc.stripe_servers.end())) {
    return now;  // already conformed
  }

  ServerId anchor = service_->alive(desired[0]) ? desired[0] : kInvalidServer;
  if (anchor == kInvalidServer) {
    ++cur_.objects_skipped;
    return now;
  }
  SimTime start = workflow_.acquire(anchor, now);
  cur_.token_wait += start - now;

  // Per-slot conform: shard i moves from its old home to desired[i]
  // when that changed. A shard whose old copy is missing or corrupt is
  // deferred and rebuilt (decode from k survivors) after the new
  // layout is registered.
  std::vector<std::uint32_t> deferred;
  bool moved = false;
  SimTime done = start;
  for (std::size_t i = 0; i < n; ++i) {
    ServerId from =
        i < loc.stripe_servers.size() ? loc.stripe_servers[i]
                                      : kInvalidServer;
    ServerId target = desired[i];
    if (from == target) continue;
    auto shard_desc = desc.shard_of(static_cast<ShardIndex>(1 + i));
    if (service_->server(target).store.contains(shard_desc)) continue;
    const bool have_source =
        from != kInvalidServer && from < service_->num_servers() &&
        service_->alive(from) &&
        service_->probe_stored(from, shard_desc,
                               staging::shard_checksum(loc, i)) ==
            ShardHealth::kOk;
    if (!have_source) {
      deferred.push_back(static_cast<std::uint32_t>(i));
      continue;
    }
    const StoredObject* stored =
        service_->server(from).store.find(shard_desc);
    SimTime read_service =
        cost.request_overhead + cost.copy_time(loc.chunk_size);
    SimTime t1 =
        service_->serve_at(from, start + cost.link_latency, read_service);
    SimTime xfer = cost.transfer_time(loc.chunk_size);
    SimTime write_service = cost.copy_time(loc.chunk_size);
    SimTime t2 = service_->serve_at(target, t1 + xfer, write_service);
    DataObject copy = stored->object;
    Status st = service_->store_at(
        target, std::move(copy),
        i < loc.k ? StoredKind::kDataChunk : StoredKind::kParity);
    assert(st.ok());
    (void)st;
    cur_.bytes_moved += loc.chunk_size;
    moved = true;
    done = std::max(done, t2);
  }

  // Publish the new stripe layout (shard checksums are indexed by
  // shard, not by server, so they carry over unchanged), then drop the
  // stale shard copies and repair the deferred slots in place.
  ObjectLocation fresh = loc;
  fresh.primary = desired[0];
  fresh.stripe_servers = desired;
  SimTime meta_ack = service_->directory().upsert(desc, fresh);
  done = std::max(done + cost.metadata_op, meta_ack);
  for (std::size_t i = 0; i < loc.stripe_servers.size() && i < n; ++i) {
    ServerId from = loc.stripe_servers[i];
    if (from == desired[i] || from == kInvalidServer ||
        from >= service_->num_servers() || !service_->alive(from)) {
      continue;
    }
    service_->remove_at(from,
                        desc.shard_of(static_cast<ShardIndex>(1 + i)));
  }
  if (!deferred.empty()) {
    // Generalized lazy recovery: decode the deferred shards onto their
    // new homes from the k survivors the fresh layout records.
    Breakdown bd;
    std::vector<ServerId> repaired;
    for (std::uint32_t i : deferred) {
      ServerId target = desired[i];
      if (std::find(repaired.begin(), repaired.end(), target) !=
          repaired.end()) {
        continue;  // rebuild_on repairs every missing shard on target
      }
      done = std::max(
          done, resilience::rebuild_on(*service_, desc, target, done, &bd));
      repaired.push_back(target);
    }
    ++cur_.objects_rebuilt;
    moved = true;
  }
  if (moved) ++cur_.objects_moved;
  workflow_.release(anchor, done);
  return done;
}

}  // namespace corec::membership
