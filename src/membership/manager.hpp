// Membership transition manager: drives server join (background
// rebalance onto the new target), drain (migrate off, then retire) and
// eviction (retire a dead target and rebuild what it held) against a
// StagingService running pool-map placement. Transitions conform the
// cluster to the placement the new map version dictates, one object at
// a time, moving only representations whose HRW ranking changed — the
// minimal-movement property the placement function guarantees.
//
// Rebalance traffic is throttled through the same per-group encoding
// token client-side replica->EC transitions use (core::EncodingWorkflow):
// each object's move acquires the token of its transfer source, so
// background migration serializes behind — and therefore yields to —
// foreground encode work instead of competing with it.
//
// Failpoints:
//   member.join.stall   — delays the start of the rebalance sweep
//                         (arg ns; default 1ms)
//   member.rebuild.kill — aborts the in-flight transition mid-sweep;
//                         the directory stays authoritative, so reads
//                         keep working and begin_rebalance() resumes
//                         the conform pass later
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "core/encoding_workflow.hpp"
#include "staging/object.hpp"
#include "staging/service.hpp"

namespace corec::membership {

/// What kind of membership transition is running.
enum class TransitionKind : std::uint8_t {
  kJoin = 0,       // new server added, rebalance inbound
  kDrain = 1,      // target retiring gracefully, rebalance outbound
  kEvict = 2,      // target dead, rebuild its shards elsewhere
  kRebalance = 3,  // conform-only sweep (resume after an abort)
};

const char* to_string(TransitionKind k);

/// Per-transition accounting, kept in the manager's history.
struct TransitionStats {
  TransitionKind kind = TransitionKind::kRebalance;
  ServerId target = kInvalidServer;   // joined/drained/evicted server
  std::uint64_t map_version = 0;      // map version at completion
  std::uint64_t objects_scanned = 0;  // worklist entries visited
  std::uint64_t objects_moved = 0;    // >= 1 representation relocated
  std::uint64_t objects_rebuilt = 0;  // needed a decode (source lost)
  std::uint64_t objects_skipped = 0;  // too few targets / data lost
  std::uint64_t bytes_moved = 0;      // payload bytes relocated
  SimTime started = 0;
  SimTime finished = 0;
  SimTime token_wait = 0;             // throttle time spent yielding
  bool aborted = false;               // member.rebuild.kill fired
  bool complete = false;              // sweep covered the worklist
};

/// Manager tuning knobs.
struct ManagerOptions {
  /// Objects conformed per step() call (rebalance pacing granularity).
  std::size_t batch_objects = 8;
  /// Token-group size handed to the throttling workflow; match the
  /// scheme's replication group so rebalance and client encodes
  /// contend for the same tokens.
  std::size_t replication_group = 4;
  /// Workflow knobs (load_balance is irrelevant here; conflict_avoid
  /// on = rebalance yields to client encode traffic).
  core::WorkflowOptions workflow;
};

/// Drives one membership transition at a time against a staging
/// service. All virtual-time costs are charged through the service's
/// queues; the manager itself is driven from the simulation loop (or a
/// test) via step()/run_to_completion().
class Manager {
 public:
  explicit Manager(staging::StagingService* service,
                   ManagerOptions options = {});

  /// Grows the cluster by one server (JOINING in a new map version) and
  /// starts the inbound rebalance. Returns the new server id.
  ServerId begin_join(SimTime now);

  /// Marks `target` DRAIN in a new map version (placement-ineligible,
  /// still readable) and starts the outbound migration; completion
  /// flips it DOWN in another version.
  Status begin_drain(ServerId target, SimTime now);

  /// Kills `target`, marks it DOWN in a new map version and rebuilds
  /// the objects it held from surviving replicas/parity.
  Status begin_evict(ServerId target, SimTime now);

  /// Conform-only sweep under the current map: moves/rebuilds whatever
  /// does not match the map's placement. The resume path after a
  /// member.rebuild.kill abort.
  Status begin_rebalance(SimTime now);

  /// True while a transition has unconformed objects left.
  bool active() const { return active_; }

  /// Conforms up to batch_objects objects. Returns true while work
  /// remains (call again); false once the transition finished or
  /// aborted. Completion publishes the final map version (join -> UP,
  /// drain -> DOWN).
  bool step(SimTime now);

  /// Steps until the transition completes or aborts; returns the
  /// virtual completion time.
  SimTime run_to_completion(SimTime now);

  /// Stats of the in-flight transition (valid while active()).
  const TransitionStats& current() const { return cur_; }
  /// Completed/aborted transitions, oldest first.
  const std::vector<TransitionStats>& history() const { return history_; }

 private:
  void start(TransitionKind kind, SimTime now);
  void build_worklist();
  void finish(SimTime t, bool complete);
  /// Moves/rebuilds one object's representations to where the current
  /// map places them. Returns the completion time (>= now).
  SimTime conform_object(const staging::ObjectDescriptor& desc,
                         SimTime now);
  SimTime conform_replicated(const staging::ObjectDescriptor& desc,
                             const staging::ObjectLocation& loc,
                             SimTime now);
  SimTime conform_encoded(const staging::ObjectDescriptor& desc,
                          const staging::ObjectLocation& loc, SimTime now);

  staging::StagingService* service_;
  ManagerOptions options_;
  core::EncodingWorkflow workflow_;
  bool active_ = false;
  TransitionStats cur_;
  std::vector<staging::ObjectDescriptor> worklist_;
  std::size_t next_ = 0;
  SimTime stall_until_ = 0;  // member.join.stall
  std::vector<TransitionStats> history_;
};

}  // namespace corec::membership
