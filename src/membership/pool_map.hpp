// Versioned pool map: the authoritative description of the staging
// server set, DAOS-style. The map is a flattened domain tree (cabinet
// -> node -> target) with a per-target lifecycle state, stamped with a
// monotonically increasing version. Every membership transition (join,
// drain, eviction, completion of a rebalance) produces a NEW version;
// clients and meta followers converge on the newest version they have
// seen and never move backwards. Placement (placement.hpp) is a pure
// function of (object key, shard index, the map at a version), so any
// holder of the map can locate data without a directory round-trip.
//
// The map is deliberately tiny (a few dozen bytes per target) and is
// replicated whole: a transition record carries the full serialized
// map, which makes replication idempotent and order-tolerant — adopt()
// keeps whichever copy carries the higher version.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace corec::membership {

/// Lifecycle of a pool target (one staging server).
enum class TargetState : std::uint8_t {
  kUp = 0,       // serving, placement-eligible
  kJoining = 1,  // serving + placement-eligible, rebalance inbound
  kDrain = 2,    // readable but placement-ineligible, rebalance outbound
  kDown = 3,     // gone: neither readable nor placement-eligible
};

/// Human-readable name of a TargetState.
const char* to_string(TargetState s);

/// One leaf of the domain tree: a target plus its position (cabinet,
/// node) and the map version at which its state last changed.
struct PoolTarget {
  ServerId id = kInvalidServer;
  std::uint16_t cabinet = 0;
  std::uint16_t node = 0;
  TargetState state = TargetState::kUp;
  std::uint64_t state_version = 0;
};

/// The versioned pool map. Mutations bump the version; reads are cheap.
/// Not internally synchronized — owners that share a map across threads
/// wrap it in their own lock (see staging::ThreadFabric).
class PoolMap {
 public:
  PoolMap() = default;

  /// Builds the initial map (version 1) with `count` UP targets laid
  /// out over the given domain shape, matching net::Topology's
  /// row-major cabinet/node assignment: server s lives on node
  /// (s / servers_per_node) % nodes_per_cabinet of cabinet
  /// s / (servers_per_node * nodes_per_cabinet).
  static PoolMap initial(std::size_t count, std::size_t nodes_per_cabinet = 4,
                         std::size_t servers_per_node = 1);

  /// Current map version. 0 means "empty / never initialized"; every
  /// real map starts at 1.
  std::uint64_t version() const { return version_; }

  /// All targets, dense by id (id == index).
  const std::vector<PoolTarget>& targets() const { return targets_; }
  std::size_t size() const { return targets_.size(); }

  /// Targets eligible to hold new placements (UP or JOINING), ascending
  /// by id.
  std::vector<ServerId> placement_targets() const;
  /// Number of placement-eligible targets.
  std::size_t placement_count() const;

  /// State of one target; kDown for out-of-range ids.
  TargetState state_of(ServerId id) const;
  /// True when the target may serve reads (UP, JOINING or DRAIN).
  bool readable(ServerId id) const;

  /// Appends a new target in JOINING state at the given domain position
  /// and bumps the version. Returns the new target's id.
  ServerId add_target(std::uint16_t cabinet, std::uint16_t node);

  /// Transitions one target's state and bumps the version. Returns
  /// FAILED_PRECONDITION for unknown ids or no-op transitions.
  Status set_state(ServerId id, TargetState state);

  /// Serializes the whole map (format byte + version + targets).
  void encode(std::vector<std::uint8_t>* out) const;
  /// Decodes a map previously produced by encode(). Hardened: rejects
  /// truncated input, bad format bytes and non-dense target ids.
  static StatusOr<PoolMap> decode(
      const std::uint8_t* data, std::size_t size);

  /// Adopts `other` if it carries a strictly newer version. Returns
  /// true when the map changed. This is the convergence rule for meta
  /// followers and stale clients.
  bool adopt(const PoolMap& other);

  /// FNV-1a digest of the serialized map; cheap equality check across
  /// processes in tests and logs.
  std::uint64_t digest() const;

  /// One-line "v<version>: U up / J joining / D drain / X down" summary.
  std::string summary() const;

 private:
  std::uint64_t version_ = 0;
  std::vector<PoolTarget> targets_;
};

}  // namespace corec::membership
