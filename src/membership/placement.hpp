// Algorithmic placement over the versioned pool map: a deterministic
// pseudo-random function from (object key, shard/replica index, map
// version) to a staging target, with no directory round-trip. The
// scheme is highest-random-weight (rendezvous) hashing: every
// placement-eligible target is scored with a 64-bit mix of (object
// key, target id) and the object's shard i lives on the target with
// the (i+1)-th highest score. HRW gives the three properties the
// property suite asserts:
//
//   deterministic  — scores depend only on the key and target id, so
//                    any process holding the same map computes the same
//                    layout;
//   balanced       — the mix is uniform, so per-target shard counts at
//                    N objects concentrate around N*shards/targets
//                    (chi-square bounded in tests);
//   minimal motion — adding or removing a target only moves the shards
//                    whose top-scoring target changed: an expected
//                    shards/targets fraction on join and only the dead
//                    target's shards on drain, vs. ~(targets-1)/targets
//                    for a naive mod-rehash.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "membership/pool_map.hpp"

namespace corec::membership {

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer. Public so
/// callers can derive object keys from ids/hashes with the same
/// diffusion quality.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// HRW score of `target` for `object_key`.
constexpr std::uint64_t placement_score(std::uint64_t object_key,
                                        ServerId target) {
  return mix64(object_key ^ mix64(0x636f726563ULL + target));
}

/// The first `count` targets of the HRW ranking of the map's
/// placement-eligible targets for `object_key`, highest score first.
/// Index 0 is the primary, 1..n-1 the replicas (or EC shards 0..n-1).
/// `count` is clamped to the number of eligible targets; an empty map
/// yields an empty vector.
std::vector<ServerId> place(const PoolMap& map, std::uint64_t object_key,
                            std::size_t count);

/// Single-shard convenience: the rank-`index` target of the ranking
/// (kInvalidServer when fewer than index+1 targets are eligible).
ServerId place_one(const PoolMap& map, std::uint64_t object_key,
                   std::size_t index = 0);

}  // namespace corec::membership
