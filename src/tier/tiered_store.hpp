// Multi-tier staging store — the paper's stated future work ("expand
// CoREC to support multiple storage layers, for example, using NVRAM
// and SSD, and designing new models for data resilience that
// incorporate utility-based data placement across these layers").
//
// A TieredStore holds object payload descriptors across an ordered set
// of tiers (memory -> NVRAM -> SSD), each with its own capacity and
// access-cost model. Placement is utility-based: utility = heat /
// byte-cost; when a tier overflows, the lowest-utility residents spill
// to the next tier; accesses re-heat objects and can promote them back.
// This prototype tracks placement and charges virtual access costs; it
// composes with the CoREC classifier's heat signal.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "staging/object.hpp"

namespace corec::tier {

/// Storage layer identity, fastest first.
enum class Tier : std::uint8_t { kMemory = 0, kNvram = 1, kSsd = 2 };

inline const char* to_string(Tier t) {
  switch (t) {
    case Tier::kMemory: return "memory";
    case Tier::kNvram: return "nvram";
    case Tier::kSsd: return "ssd";
  }
  return "?";
}

/// Capacity and cost model of one layer.
struct TierSpec {
  Tier tier = Tier::kMemory;
  std::size_t capacity_bytes = 0;  // 0 = this tier does not exist
  SimTime access_latency = 0;      // per-request device latency
  double bandwidth = 0;            // bytes/second

  /// Virtual time to move `bytes` through this device.
  SimTime access_time(std::size_t bytes) const {
    return access_latency +
           static_cast<SimTime>(static_cast<double>(bytes) /
                                bandwidth * 1e9);
  }
};

/// Defaults loosely modeled on 2018-era staging nodes.
TierSpec memory_tier(std::size_t capacity);
TierSpec nvram_tier(std::size_t capacity);
TierSpec ssd_tier(std::size_t capacity);

/// Per-tier occupancy and traffic counters.
struct TierStats {
  std::size_t resident_bytes = 0;
  std::size_t resident_objects = 0;
  std::uint64_t hits = 0;        // accesses served from this tier
  std::uint64_t spills_in = 0;   // objects demoted into this tier
  std::uint64_t promotions = 0;  // objects promoted out on access
};

/// Utility-based multi-tier object placement.
class TieredStore {
 public:
  /// `tiers` must be ordered fastest-first and non-empty. The heat
  /// decay is applied by end_of_step().
  explicit TieredStore(std::vector<TierSpec> tiers,
                       double heat_decay = 0.5);

  /// Inserts (or refreshes) an object of `bytes` with initial heat.
  /// New data lands in the fastest tier with room after spilling;
  /// fails with ResourceExhausted when even the slowest tier is full.
  Status put(const staging::ObjectDescriptor& desc, std::size_t bytes,
             double heat = 1.0);

  /// Access an object: returns the virtual access cost (from the tier
  /// it resides on), bumps its heat, and promotes it one tier up when
  /// its utility now exceeds the coldest resident above. NotFound if
  /// the object is not resident.
  StatusOr<SimTime> access(const staging::ObjectDescriptor& desc);

  /// Removes an object.
  bool erase(const staging::ObjectDescriptor& desc);

  /// Applies heat decay (call once per application time step).
  void end_of_step();

  /// Where an object currently lives.
  StatusOr<Tier> tier_of(const staging::ObjectDescriptor& desc) const;

  const TierStats& stats(Tier t) const {
    return stats_[static_cast<std::size_t>(t)];
  }
  std::size_t total_objects() const { return objects_.size(); }

 private:
  struct Resident {
    std::size_t bytes = 0;
    double heat = 0.0;
    std::size_t tier_index = 0;
  };

  double utility(const Resident& r) const {
    return r.heat / static_cast<double>(r.bytes == 0 ? 1 : r.bytes);
  }

  /// Frees at least `bytes` in tier `idx` by spilling residents with
  /// utility below `incoming_utility` down (recursively); returns
  /// false when the hierarchy cannot absorb them without evicting
  /// hotter data.
  bool make_room(std::size_t idx, std::size_t bytes,
                 double incoming_utility);

  /// Moves a resident between tiers, updating stats.
  void move(const staging::ObjectDescriptor& desc, Resident* r,
            std::size_t to_index);

  std::vector<TierSpec> tiers_;
  double heat_decay_;
  std::unordered_map<staging::ObjectDescriptor, Resident,
                     staging::DescriptorHash>
      objects_;
  std::vector<std::size_t> used_;  // bytes per tier
  mutable std::vector<TierStats> stats_;
};

}  // namespace corec::tier
