#include "tier/tiered_store.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace corec::tier {

TierSpec memory_tier(std::size_t capacity) {
  return {Tier::kMemory, capacity, from_micros(0.2), 6.0e9};
}

TierSpec nvram_tier(std::size_t capacity) {
  return {Tier::kNvram, capacity, from_micros(2.0), 2.0e9};
}

TierSpec ssd_tier(std::size_t capacity) {
  return {Tier::kSsd, capacity, from_micros(80.0), 0.5e9};
}

TieredStore::TieredStore(std::vector<TierSpec> tiers, double heat_decay)
    : tiers_(std::move(tiers)),
      heat_decay_(heat_decay),
      used_(tiers_.size(), 0),
      stats_(tiers_.size()) {
  assert(!tiers_.empty());
  for (std::size_t i = 1; i < tiers_.size(); ++i) {
    assert(tiers_[i - 1].tier < tiers_[i].tier &&
           "tiers must be ordered fastest-first");
  }
}

bool TieredStore::make_room(std::size_t idx, std::size_t bytes,
                            double incoming_utility) {
  if (bytes > tiers_[idx].capacity_bytes) return false;
  while (used_[idx] + bytes > tiers_[idx].capacity_bytes) {
    // Find the lowest-utility resident of this tier; never evict a
    // resident hotter than the incoming object.
    const staging::ObjectDescriptor* victim = nullptr;
    double victim_utility = incoming_utility;
    for (const auto& [desc, r] : objects_) {
      if (r.tier_index != idx) continue;
      double u = utility(r);
      if (u < victim_utility) {
        victim_utility = u;
        victim = &desc;
      }
    }
    if (victim == nullptr) return false;  // everything here is hotter
    if (idx + 1 >= tiers_.size()) return false;  // no lower tier
    Resident& r = objects_[*victim];
    if (!make_room(idx + 1, r.bytes, victim_utility)) return false;
    staging::ObjectDescriptor desc = *victim;
    move(desc, &objects_[desc], idx + 1);
    ++stats_[idx + 1].spills_in;
  }
  return true;
}

void TieredStore::move(const staging::ObjectDescriptor& desc, Resident* r,
                       std::size_t to_index) {
  (void)desc;
  used_[r->tier_index] -= r->bytes;
  stats_[r->tier_index].resident_bytes -= r->bytes;
  --stats_[r->tier_index].resident_objects;
  r->tier_index = to_index;
  used_[to_index] += r->bytes;
  stats_[to_index].resident_bytes += r->bytes;
  ++stats_[to_index].resident_objects;
}

Status TieredStore::put(const staging::ObjectDescriptor& desc,
                        std::size_t bytes, double heat) {
  auto it = objects_.find(desc);
  if (it != objects_.end()) {
    // Refresh in place (same tier) when the size still fits; otherwise
    // treat as erase + insert.
    if (it->second.bytes == bytes) {
      it->second.heat = std::max(it->second.heat, heat);
      return Status::Ok();
    }
    erase(desc);
  }
  double incoming =
      heat / static_cast<double>(bytes == 0 ? 1 : bytes);
  if (!make_room(0, bytes, incoming)) {
    // The fastest tier cannot absorb it without evicting hotter data:
    // place into the first lower tier that can take it.
    std::size_t idx = 1;
    for (; idx < tiers_.size(); ++idx) {
      if (make_room(idx, bytes, incoming)) break;
    }
    if (idx == tiers_.size()) {
      return Status::ResourceExhausted("all tiers full");
    }
    Resident r{bytes, heat, idx};
    used_[idx] += bytes;
    stats_[idx].resident_bytes += bytes;
    ++stats_[idx].resident_objects;
    objects_.emplace(desc, r);
    return Status::Ok();
  }
  Resident r{bytes, heat, 0};
  used_[0] += bytes;
  stats_[0].resident_bytes += bytes;
  ++stats_[0].resident_objects;
  objects_.emplace(desc, r);
  return Status::Ok();
}

StatusOr<SimTime> TieredStore::access(
    const staging::ObjectDescriptor& desc) {
  auto it = objects_.find(desc);
  if (it == objects_.end()) {
    return Status::NotFound("not resident: " + desc.to_string());
  }
  Resident& r = it->second;
  std::size_t idx = r.tier_index;
  SimTime cost = tiers_[idx].access_time(r.bytes);
  ++stats_[idx].hits;
  r.heat += 1.0;

  // Promotion-on-access: if it now beats the coldest resident of the
  // tier above, swap up.
  if (idx > 0) {
    const staging::ObjectDescriptor* coldest = nullptr;
    double coldest_utility = std::numeric_limits<double>::max();
    for (const auto& [odesc, o] : objects_) {
      if (o.tier_index != idx - 1) continue;
      double u = utility(o);
      if (u < coldest_utility) {
        coldest_utility = u;
        coldest = &odesc;
      }
    }
    bool has_room =
        used_[idx - 1] + r.bytes <= tiers_[idx - 1].capacity_bytes;
    if (has_room ||
        (coldest != nullptr && utility(r) > coldest_utility)) {
      if (!has_room && coldest != nullptr) {
        // Swap: coldest goes down to this tier.
        staging::ObjectDescriptor cd = *coldest;
        move(cd, &objects_[cd], idx);
        ++stats_[idx].spills_in;
      }
      if (used_[idx - 1] + r.bytes <= tiers_[idx - 1].capacity_bytes) {
        move(desc, &r, idx - 1);
        ++stats_[idx - 1].promotions;
      }
    }
  }
  return cost;
}

bool TieredStore::erase(const staging::ObjectDescriptor& desc) {
  auto it = objects_.find(desc);
  if (it == objects_.end()) return false;
  Resident& r = it->second;
  used_[r.tier_index] -= r.bytes;
  stats_[r.tier_index].resident_bytes -= r.bytes;
  --stats_[r.tier_index].resident_objects;
  objects_.erase(it);
  return true;
}

void TieredStore::end_of_step() {
  for (auto& [desc, r] : objects_) r.heat *= heat_decay_;
}

StatusOr<Tier> TieredStore::tier_of(
    const staging::ObjectDescriptor& desc) const {
  auto it = objects_.find(desc);
  if (it == objects_.end()) {
    return Status::NotFound("not resident: " + desc.to_string());
  }
  return tiers_[it->second.tier_index].tier;
}

}  // namespace corec::tier
