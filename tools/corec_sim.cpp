// corec_sim — configurable experiment runner for the CoREC staging
// simulator. Runs one workload/mechanism combination and reports the
// metrics the paper's evaluation uses, optionally as CSV for plotting.
//
// Examples:
//   corec_sim --case 3 --mechanism corec
//   corec_sim --case 1 --mechanism erasure --servers 16 --steps 30
//   corec_sim --case 5 --mechanism corec --fail 4:2 --replace 8:2
//   corec_sim --case 2 --mechanism hybrid --floor 0.72 --csv
//   corec_sim --s3d 4480 --mechanism corec --scale 4
//   corec_sim --threads 4 --servers 8
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <csignal>

#include <poll.h>

#include "common/buffer.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "erasure/codec.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "staging/thread_fabric.hpp"
#include "core/corec_scheme.hpp"
#include "membership/manager.hpp"
#include "meta/meta_client.hpp"
#include "net/cost_model.hpp"
#include "meta/meta_service.hpp"
#include "resilience/scrubber.hpp"
#include "workloads/driver.hpp"
#include "workloads/mechanisms.hpp"
#include "workloads/s3d.hpp"
#include "workloads/synthetic.hpp"

using namespace corec;
using namespace corec::workloads;

namespace {

struct CliOptions {
  int case_number = 1;
  int s3d_cores = 0;  // 0 = synthetic; 4480/8960/17920 = Table II
  geom::Coord s3d_scale = 4;
  std::string mechanism = "corec";
  std::size_t servers = 8;
  std::size_t cabinets = 4;
  Version steps = 20;
  std::size_t k = 3, m = 1, n_level = 1;
  double floor = 0.67;
  std::uint64_t seed = 42;
  bool csv = false;
  bool verify = false;
  bool calibrate = false;
  bool batch_encode = false;
  bool pipeline_encode = false;
  // Replicated metadata plane: follower count K (0 = plain local
  // directory), plus optional primary-kill steps.
  std::size_t meta_followers = 0;
  std::vector<Version> meta_kills;
  // Fault-injection config (failpoint grammar) and background scrub
  // pacing (0 = no scrubber).
  std::string failpoints;
  double scrub_mtbf = 0.0;
  // step:server pairs
  std::vector<std::pair<Version, ServerId>> fails;
  std::vector<std::pair<Version, ServerId>> replaces;
  // Elastic membership: join a fresh server at step TS, drain server
  // SRV at step TS. Either implies pool-map placement.
  std::vector<Version> joins;
  std::vector<std::pair<Version, ServerId>> drains;
  bool pool_placement = false;
  // Real-thread fabric exercise: 0 = run the virtual-time simulator
  // (default); N > 0 drives a ThreadFabric from N client threads.
  std::size_t threads = 0;
  // Network modes: --serve runs an RPC server until signalled
  // (-1 = off; 0 = kernel-assigned port), --connect drives a smoke
  // workload against HOST:PORT as an RPC client.
  int serve_port = -1;
  std::size_t serve_loops = 0;  // 0 = min(hardware_concurrency, 4)
  std::string connect_addr;
};

void usage() {
  std::printf(
      "corec_sim — CoREC staging experiment runner\n\n"
      "workload (pick one):\n"
      "  --case N            synthetic case 1-5 (default 1)\n"
      "  --s3d CORES         Table II S3D scenario: 4480|8960|17920\n"
      "  --scale F           shrink S3D blocks by F (default 4; 1 = "
      "paper size)\n"
      "options:\n"
      "  --mechanism M       dataspaces|replicate|erasure|hybrid|corec|"
      "corec-aggressive\n"
      "  --servers N         staging servers (default 8)\n"
      "  --cabinets N        failure domains (default 4)\n"
      "  --steps N           time steps (default 20)\n"
      "  --k N --m N         stripe geometry (default 3+1)\n"
      "  --replicas N        replica count for hot data (default 1)\n"
      "  --floor F           storage efficiency floor (default 0.67)\n"
      "  --fail TS:SRV       kill server SRV at step TS (repeatable)\n"
      "  --replace TS:SRV    replace server SRV at step TS (repeatable)\n"
      "  --join TS           grow the cluster by one server at step TS\n"
      "                      and rebalance onto it (repeatable; implies\n"
      "                      --pool-placement)\n"
      "  --drain TS:SRV      drain server SRV at step TS: migrate its\n"
      "                      data off, then retire it (repeatable;\n"
      "                      implies --pool-placement)\n"
      "  --pool-placement    route objects with the versioned pool map\n"
      "                      (HRW) instead of the static SFC ring\n"
      "  --meta K            replicate the metadata directory on a\n"
      "                      primary + K followers (default: local)\n"
      "  --meta-kill TS      kill the metadata primary process at step\n"
      "                      TS (repeatable; requires --meta)\n"
      "  --failpoints SPEC   arm fault-injection points, e.g.\n"
      "                      'staging.shard.bitflip=bitflip:p=0.1;"
      "meta.append.drop_ack=error:p=0.3'\n"
      "                      (also read from $COREC_FAILPOINTS)\n"
      "  --scrub S           background integrity scrubber paced for an\n"
      "                      MTBF of S seconds (0 = off, default)\n"
      "  --batch-encode      drain CoREC cold transitions through the\n"
      "                      batched pipelined encoder (corec variants)\n"
      "  --pipeline-encode   drain CoREC cold transitions through the\n"
      "                      ring-pipelined encoder: each stripe's parity\n"
      "                      accumulates along its replica holders\n"
      "                      (corec variants)\n"
      "  --threads N         skip the simulator; drive the real-thread\n"
      "                      ThreadFabric (sharded stores + entity-\n"
      "                      sharded directory) from N client threads\n"
      "                      with byte verification of every read\n"
      "  --serve PORT        skip the simulator; serve the ThreadFabric\n"
      "                      over TCP RPC on PORT (0 = kernel-assigned)\n"
      "                      until SIGINT/SIGTERM\n"
      "  --loops N           with --serve: epoll event-loop shards\n"
      "                      (0 = min(hardware_concurrency, 4))\n"
      "  --connect H:P       skip the simulator; run a byte-verified\n"
      "                      put/get/query/erase smoke workload against\n"
      "                      a corec-server at HOST:PORT\n"
      "  --seed N            RNG seed\n"
      "  --verify            real payloads + byte verification\n"
      "  --calibrate         measure this machine's GF kernel encode\n"
      "                      rate and use it for simulated encode costs\n"
      "                      (default: Titan-like constant, for\n"
      "                      run-to-run determinism)\n"
      "  --csv               per-step CSV on stdout\n");
}

bool parse_pair(const char* arg, std::pair<Version, ServerId>* out) {
  const char* colon = std::strchr(arg, ':');
  if (colon == nullptr) return false;
  out->first = static_cast<Version>(std::strtoul(arg, nullptr, 10));
  out->second =
      static_cast<ServerId>(std::strtoul(colon + 1, nullptr, 10));
  return true;
}

Mechanism parse_mechanism(const std::string& name) {
  if (name == "dataspaces" || name == "none") return Mechanism::kNone;
  if (name == "replicate") return Mechanism::kReplication;
  if (name == "erasure") return Mechanism::kErasure;
  if (name == "hybrid") return Mechanism::kHybrid;
  if (name == "corec") return Mechanism::kCorec;
  if (name == "corec-aggressive") return Mechanism::kCorecAggressive;
  std::fprintf(stderr, "unknown mechanism '%s'\n", name.c_str());
  std::exit(2);
}

bool parse_args(int argc, char** argv, CliOptions* cli) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else if (a == "--case") {
      cli->case_number = std::atoi(next());
    } else if (a == "--s3d") {
      cli->s3d_cores = std::atoi(next());
    } else if (a == "--scale") {
      cli->s3d_scale = std::atol(next());
    } else if (a == "--mechanism") {
      cli->mechanism = next();
    } else if (a == "--servers") {
      cli->servers = static_cast<std::size_t>(std::atol(next()));
    } else if (a == "--cabinets") {
      cli->cabinets = static_cast<std::size_t>(std::atol(next()));
    } else if (a == "--steps") {
      cli->steps = static_cast<Version>(std::atol(next()));
    } else if (a == "--k") {
      cli->k = static_cast<std::size_t>(std::atol(next()));
    } else if (a == "--m") {
      cli->m = static_cast<std::size_t>(std::atol(next()));
    } else if (a == "--replicas") {
      cli->n_level = static_cast<std::size_t>(std::atol(next()));
    } else if (a == "--floor") {
      cli->floor = std::atof(next());
    } else if (a == "--threads") {
      cli->threads = static_cast<std::size_t>(std::atol(next()));
    } else if (a == "--serve") {
      cli->serve_port = std::atoi(next());
    } else if (a == "--loops") {
      cli->serve_loops = static_cast<std::size_t>(std::atol(next()));
    } else if (a == "--connect") {
      cli->connect_addr = next();
    } else if (a == "--seed") {
      cli->seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--failpoints") {
      cli->failpoints = next();
    } else if (a == "--scrub") {
      cli->scrub_mtbf = std::atof(next());
    } else if (a == "--batch-encode") {
      cli->batch_encode = true;
    } else if (a == "--pipeline-encode") {
      cli->pipeline_encode = true;
    } else if (a == "--meta") {
      cli->meta_followers = static_cast<std::size_t>(std::atol(next()));
    } else if (a == "--meta-kill") {
      cli->meta_kills.push_back(
          static_cast<Version>(std::atol(next())));
    } else if (a == "--csv") {
      cli->csv = true;
    } else if (a == "--verify") {
      cli->verify = true;
    } else if (a == "--calibrate") {
      cli->calibrate = true;
    } else if (a == "--fail") {
      std::pair<Version, ServerId> p;
      if (!parse_pair(next(), &p)) return false;
      cli->fails.push_back(p);
    } else if (a == "--replace") {
      std::pair<Version, ServerId> p;
      if (!parse_pair(next(), &p)) return false;
      cli->replaces.push_back(p);
    } else if (a == "--join") {
      cli->joins.push_back(static_cast<Version>(std::atol(next())));
      cli->pool_placement = true;
    } else if (a == "--drain") {
      std::pair<Version, ServerId> p;
      if (!parse_pair(next(), &p)) return false;
      cli->drains.push_back(p);
      cli->pool_placement = true;
    } else if (a == "--pool-placement") {
      cli->pool_placement = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

// --threads mode: hammer a ThreadFabric from N real client threads.
// Each thread owns a disjoint slice of entities (so expected bytes are
// deterministic) but entities from different threads interleave over
// the same servers and shards, exercising the lock stripes. Every get
// is byte-verified against the owner's last write; a final async batch
// exercises the worker-pool dispatch path. Returns nonzero on any
// mismatch.
int run_fabric_exercise(const CliOptions& cli) {
  using staging::DataObject;
  using staging::ObjectDescriptor;
  using staging::ObjectLocation;
  using staging::StoredKind;

  constexpr int kEntitiesPerThread = 64;
  constexpr int kOpsPerThread = 20000;
  constexpr std::size_t kPayloadBytes = 2048;
  const std::size_t threads = cli.threads;

  staging::FabricOptions options;
  options.workers = threads;
  // Stripe for the offered parallelism, not the host's core count: the
  // exercise (and the TSan CI leg) must cover cross-stripe interleaving
  // even on single-core runners where the auto shard count is 1.
  options.store_shards = threads * 4;
  options.directory_shards = threads * 4;
  staging::ThreadFabric fabric(cli.servers, options);
  payload_metrics().reset();

  auto desc_of = [](std::size_t tid, int entity, Version version) {
    const auto cell =
        static_cast<geom::Coord>(tid) * kEntitiesPerThread + entity;
    return ObjectDescriptor{static_cast<VarId>(1 + tid), version,
                            geom::BoundingBox::line(cell * 16, cell * 16 + 15),
                            staging::kWholeObject};
  };
  auto payload_of = [](std::size_t tid, int entity, Version version) {
    Bytes b(kPayloadBytes);
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = static_cast<std::uint8_t>(tid * 131 + entity * 31 +
                                       version * 7 + i);
    }
    return b;
  };

  std::atomic<std::uint64_t> mismatches{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (std::size_t tid = 0; tid < threads; ++tid) {
    clients.emplace_back([&, tid] {
      Rng rng(cli.seed, 0x7ab0 + tid);
      // Per-entity: version of the owner's last live write (0 = erased).
      std::vector<Version> live(kEntitiesPerThread, 0);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const int entity =
            static_cast<int>(rng.uniform(kEntitiesPerThread));
        const std::uint32_t dice = rng.uniform(100);
        if (dice < 50 || live[entity] == 0) {  // put (new version)
          const Version v = live[entity] + 1;
          const ObjectDescriptor desc = desc_of(tid, entity, v);
          const ObjectDescriptor old = desc_of(tid, entity, live[entity]);
          if (live[entity] != 0) {
            (void)fabric.erase(old);
            (void)fabric.directory().remove(old);
          }
          Status st = fabric.put(
              DataObject::real(desc,
                               PayloadBuffer::wrap(payload_of(tid, entity, v))),
              StoredKind::kPrimary);
          if (!st.ok()) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          ObjectLocation loc;
          loc.primary = fabric.route(desc);
          loc.logical_size = kPayloadBytes;
          fabric.directory().upsert(desc, loc);
          live[entity] = v;
        } else if (dice < 90) {  // verified read
          const ObjectDescriptor desc = desc_of(tid, entity, live[entity]);
          auto got = fabric.get(desc);
          if (!got.ok() ||
              !(got.value().object.data ==
                payload_of(tid, entity, live[entity]))) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          auto loc = fabric.directory().find(desc);
          if (!loc.ok() || loc.value().primary != fabric.route(desc)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        } else {  // erase; a re-read must now miss
          const ObjectDescriptor desc = desc_of(tid, entity, live[entity]);
          if (!fabric.erase(desc) || !fabric.directory().remove(desc) ||
              fabric.get(desc).ok()) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          live[entity] = 0;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double sync_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  const std::uint64_t sync_ops =
      static_cast<std::uint64_t>(threads) * kOpsPerThread;

  // Async leg: dispatch one more round of puts through the worker pool
  // and verify all of them landed after drain().
  std::atomic<std::uint64_t> async_failures{0};
  const auto async_var = static_cast<VarId>(1000);
  for (int i = 0; i < 256; ++i) {
    ObjectDescriptor desc{async_var, 1,
                          geom::BoundingBox::line(i * 4, i * 4 + 3),
                          staging::kWholeObject};
    fabric.async_put(
        fabric.route(desc),
        DataObject::real(desc, PayloadBuffer::wrap(Bytes(512, 0xA5))),
        StoredKind::kPrimary, [&async_failures](Status st) {
          if (!st.ok()) {
            async_failures.fetch_add(1, std::memory_order_relaxed);
          }
        });
  }
  fabric.drain();
  for (int i = 0; i < 256; ++i) {
    ObjectDescriptor desc{async_var, 1,
                          geom::BoundingBox::line(i * 4, i * 4 + 3),
                          staging::kWholeObject};
    if (!fabric.get(desc).ok()) {
      async_failures.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Ring-encode leg: real threads act as the hops of the pipelined
  // replica→EC ring. Hop j spins until its predecessor's CRC-stamped
  // partial-parity frame lands in the fabric, folds its chunk run with
  // the fused partial kernels, and publishes the accumulated frame for
  // hop j+1. The final frame must be byte-identical to a one-shot
  // centralized encode of the same stripe.
  std::atomic<std::uint64_t> ring_failures{0};
  std::size_t ring_hops = 0;
  {
    constexpr std::size_t kRingK = 8;
    constexpr std::size_t kRingM = 2;
    constexpr std::size_t kRingChunk = 4096;
    auto codec_or = erasure::make_reed_solomon(kRingK, kRingM);
    const erasure::Codec& codec = *codec_or.value();

    Bytes source(kRingK * kRingChunk);
    for (std::size_t i = 0; i < source.size(); ++i) {
      source[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
    }
    PayloadBuffer src = PayloadBuffer::wrap(std::move(source));
    std::vector<ByteSpan> data(kRingK);
    for (std::size_t i = 0; i < kRingK; ++i) {
      data[i] = src.subspan(i * kRingChunk, kRingChunk);
    }

    ring_hops = std::min<std::size_t>(std::max<std::size_t>(threads, 1),
                                      kRingK);
    const std::size_t hops = ring_hops;
    const auto frame_var = static_cast<VarId>(2000);
    auto frame_desc = [&](std::size_t hop) {
      return ObjectDescriptor{frame_var, static_cast<Version>(hop + 1),
                              geom::BoundingBox::line(0, 15),
                              staging::kWholeObject};
    };
    std::vector<std::thread> ring;
    ring.reserve(hops);
    for (std::size_t j = 0; j < hops; ++j) {
      ring.emplace_back([&, j] {
        const std::size_t base = kRingK / hops;
        const std::size_t extra = kRingK % hops;
        const std::size_t first = j * base + std::min(j, extra);
        const std::size_t count = base + (j < extra ? 1 : 0);
        Bytes parity(kRingM * kRingChunk, 0);
        if (j > 0) {
          for (;;) {  // receive the predecessor's frame
            auto got = fabric.get(frame_desc(j - 1));
            if (got.ok()) {
              const DataObject& frame = got.value().object;
              // Frame CRC check — the detection point the corrupt-
              // partial failpoint exercises in the simulator.
              if (frame.data.size() != parity.size() ||
                  frame.data.crc32c() != frame.checksum) {
                ring_failures.fetch_add(1, std::memory_order_relaxed);
              } else {
                std::memcpy(parity.data(), frame.data.data(),
                            parity.size());
              }
              break;
            }
            std::this_thread::yield();
          }
        }
        std::vector<MutableByteSpan> pspans(kRingM);
        for (std::size_t p = 0; p < kRingM; ++p) {
          pspans[p] = MutableByteSpan(parity.data() + p * kRingChunk,
                                      kRingChunk);
        }
        Status st = codec.encode_partial_view(&data[first], first, count,
                                              pspans.data(), kRingM,
                                              /*accumulate=*/j > 0);
        if (!st.ok()) {
          ring_failures.fetch_add(1, std::memory_order_relaxed);
        }
        st = fabric.put(
            DataObject::real(frame_desc(j),
                             PayloadBuffer::wrap(std::move(parity))),
            StoredKind::kPrimary);
        if (!st.ok()) {
          ring_failures.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : ring) t.join();

    Bytes expect(kRingM * kRingChunk, 0);
    {
      std::vector<MutableByteSpan> pspans(kRingM);
      for (std::size_t p = 0; p < kRingM; ++p) {
        pspans[p] = MutableByteSpan(expect.data() + p * kRingChunk,
                                    kRingChunk);
      }
      Status st = codec.encode_view(data.data(), kRingK, pspans.data(),
                                    kRingM);
      if (!st.ok()) {
        ring_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
    auto fin = fabric.get(frame_desc(hops - 1));
    if (!fin.ok() || !(fin.value().object.data == expect)) {
      ring_failures.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const auto stats = fabric.stats();
  const auto shards = fabric.shard_metrics();
  const auto& pm = payload_metrics();
  std::printf("fabric          : %zu servers x %zu shards, %zu client "
              "threads, %zu workers\n",
              fabric.num_servers(), fabric.store(0).shard_count(),
              threads, threads);
  std::printf("sync phase      : %llu ops in %.3f s (%.2f M ops/s)\n",
              static_cast<unsigned long long>(sync_ops), sync_seconds,
              static_cast<double>(sync_ops) / sync_seconds / 1e6);
  std::printf("fabric ops      : %llu puts (%llu failed), %llu gets "
              "(%llu misses), %llu erases\n",
              static_cast<unsigned long long>(stats.puts),
              static_cast<unsigned long long>(stats.put_failures),
              static_cast<unsigned long long>(stats.gets),
              static_cast<unsigned long long>(stats.get_misses),
              static_cast<unsigned long long>(stats.erases));
  std::printf("objects         : %zu live (%zu B), directory %zu\n",
              fabric.total_objects(), fabric.total_bytes(),
              fabric.directory().size());
  std::printf("shard metrics   : %llu lock acquisitions, %llu contended "
              "(%.4f%%), max shard occupancy %llu\n",
              static_cast<unsigned long long>(shards.lock_acquisitions),
              static_cast<unsigned long long>(
                  shards.contended_acquisitions),
              100.0 * shards.contention_rate(),
              static_cast<unsigned long long>(shards.max_shard_occupancy));
  std::printf("payload         : %llu bytes copied on reads, %llu cow "
              "detaches, %llu crc recomputes\n",
              static_cast<unsigned long long>(pm.bytes_copied.load()),
              static_cast<unsigned long long>(pm.cow_detaches.load()),
              static_cast<unsigned long long>(pm.crc_computed.load()));
  std::printf("ring encode     : %zu hop(s) over the fabric, parity %s\n",
              ring_hops,
              ring_failures.load() == 0 ? "byte-identical to one-shot"
                                        : "MISMATCH");
  const std::uint64_t bad =
      mismatches.load() + async_failures.load() + ring_failures.load();
  std::printf("verification    : %s (%llu mismatches, %llu async "
              "failures, %llu ring failures)\n",
              bad == 0 ? "all reads byte-exact" : "MISMATCH",
              static_cast<unsigned long long>(mismatches.load()),
              static_cast<unsigned long long>(async_failures.load()),
              static_cast<unsigned long long>(ring_failures.load()));
  return bad == 0 ? 0 : 1;
}

volatile std::sig_atomic_t g_serve_stop = 0;

// --serve mode: front a ThreadFabric with the RPC event loop so the
// sim binary doubles as a smoke server for the client modes below.
int run_serve(const CliOptions& cli) {
  rpc::ServerOptions options;
  options.port = static_cast<std::uint16_t>(cli.serve_port);
  options.num_servers = cli.servers;
  options.num_loops = cli.serve_loops;
  rpc::Server server(options);
  Status st = server.start();
  if (!st.ok()) {
    std::fprintf(stderr, "--serve: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("corec-sim serving on %s:%u (%zu servers, %zu loops)\n",
              server.host().c_str(), server.port(), cli.servers,
              server.num_loops());
  std::fflush(stdout);
  std::signal(SIGINT, [](int) { g_serve_stop = 1; });
  std::signal(SIGTERM, [](int) { g_serve_stop = 1; });
  while (!g_serve_stop) ::poll(nullptr, 0, 200);
  const auto stats = server.stats();
  server.stop();
  std::printf("served %llu frames over %llu connections\n",
              static_cast<unsigned long long>(stats.frames_in),
              static_cast<unsigned long long>(stats.accepted));
  return 0;
}

// --connect mode: byte-verified put/get/query/erase smoke workload
// against a remote corec-server. Returns nonzero on any mismatch.
int run_connect(const CliOptions& cli) {
  const auto colon = cli.connect_addr.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect expects HOST:PORT\n");
    return 2;
  }
  rpc::ClientOptions options;
  options.host = cli.connect_addr.substr(0, colon);
  options.port = static_cast<std::uint16_t>(
      std::atoi(cli.connect_addr.c_str() + colon + 1));
  rpc::Client client(options);

  Status st = client.ping();
  if (!st.ok()) {
    std::fprintf(stderr, "--connect: ping failed: %s\n",
                 st.to_string().c_str());
    return 1;
  }

  constexpr int kObjects = 64;
  constexpr std::size_t kPayloadBytes = 4096;
  const auto var = static_cast<VarId>(4242);
  Rng rng(cli.seed, 0xc0ec);
  std::uint64_t mismatches = 0;
  auto desc_of = [&](int i) {
    return staging::ObjectDescriptor{
        var, 1, geom::BoundingBox::line(i * 8, i * 8 + 7),
        staging::kWholeObject};
  };
  std::vector<Bytes> payloads;
  payloads.reserve(kObjects);
  for (int i = 0; i < kObjects; ++i) {
    Bytes b(kPayloadBytes);
    for (auto& byte : b) {
      byte = static_cast<std::uint8_t>(rng.uniform(256));
    }
    payloads.push_back(std::move(b));
    st = client.put(desc_of(i), PayloadBuffer::copy_of(payloads.back()));
    if (!st.ok()) ++mismatches;
  }
  for (int i = 0; i < kObjects; ++i) {
    auto got = client.get(desc_of(i));
    if (!got.ok() || !(got->payload == payloads[i])) ++mismatches;
  }
  auto found = client.query(var, 1,
                            geom::BoundingBox::line(0, kObjects * 8 - 1));
  if (!found.ok() || found->size() != kObjects) ++mismatches;
  for (int i = 0; i < kObjects; ++i) {
    auto removed = client.erase(desc_of(i));
    if (!removed.ok() || !*removed) ++mismatches;
    if (client.get(desc_of(i)).ok()) ++mismatches;
  }
  auto remote = client.stat();
  std::printf("connect smoke   : %d objects x %zu B against %s\n",
              kObjects, kPayloadBytes, cli.connect_addr.c_str());
  if (remote.ok()) {
    std::printf("remote fabric   : %llu servers, %llu puts, %llu gets, "
                "%llu erases\n",
                static_cast<unsigned long long>(remote->num_servers),
                static_cast<unsigned long long>(remote->fabric.puts),
                static_cast<unsigned long long>(remote->fabric.gets),
                static_cast<unsigned long long>(remote->fabric.erases));
  }
  std::printf("verification    : %s (%llu mismatches)\n",
              mismatches == 0 ? "all reads byte-exact" : "MISMATCH",
              static_cast<unsigned long long>(mismatches));
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_args(argc, argv, &cli)) {
    usage();
    return 2;
  }
  if (cli.threads > 0) return run_fabric_exercise(cli);
  if (!cli.failpoints.empty() &&
      (cli.serve_port >= 0 || !cli.connect_addr.empty())) {
    Status st = failpoint::registry().arm_from_string(cli.failpoints);
    if (!st.ok()) {
      std::fprintf(stderr, "--failpoints: %s\n", st.message().c_str());
      return 2;
    }
    cli.failpoints.clear();
  }
  if (cli.serve_port >= 0) return run_serve(cli);
  if (!cli.connect_addr.empty()) return run_connect(cli);
  if (!cli.failpoints.empty()) {
    Status st = failpoint::registry().arm_from_string(cli.failpoints);
    if (!st.ok()) {
      std::fprintf(stderr, "--failpoints: %s\n", st.message().c_str());
      return 2;
    }
  }

  // --- assemble workload + service configuration ------------------------
  WorkloadPlan plan;
  staging::ServiceOptions service_opts;
  if (cli.s3d_cores != 0) {
    S3dConfig config;
    switch (cli.s3d_cores) {
      case 4480: config = s3d_4480(); break;
      case 8960: config = s3d_8960(); break;
      case 17920: config = s3d_17920(); break;
      default:
        std::fprintf(stderr, "--s3d must be 4480|8960|17920\n");
        return 2;
    }
    config = scaled(config, cli.s3d_scale);
    config.time_steps = cli.steps;
    plan = make_s3d_plan(config);
    service_opts = s3d_service_options(config);
  } else {
    if (cli.case_number < 1 || cli.case_number > 5) {
      std::fprintf(stderr, "--case must be 1-5\n");
      return 2;
    }
    SyntheticOptions synth;
    synth.time_steps = cli.steps;
    synth.seed = cli.seed;
    if (cli.verify) {
      synth.domain_extent = 32;  // keep the mirror small
      synth.writer_grid = 2;
      synth.readers = 8;
    }
    plan = make_synthetic_case(cli.case_number, synth);
    service_opts = table1_service_options();
    service_opts.domain = plan.domain;
    if (cli.verify) service_opts.fit.target_bytes = 4096;
  }
  if (cli.servers % cli.cabinets != 0) {
    std::fprintf(stderr, "--servers must be divisible by --cabinets\n");
    return 2;
  }
  service_opts.topology =
      net::Topology(cli.cabinets, cli.servers / cli.cabinets, 1);
  service_opts.seed = cli.seed;
  if (cli.pool_placement) {
    service_opts.placement = staging::PlacementMode::kPoolMap;
  }
  if (cli.calibrate) {
    service_opts.cost = net::CostModel::calibrated();
    std::fprintf(stderr,
                 "calibrated gf_region_rate = %.3g B/s (kernel: %s)\n",
                 service_opts.cost.gf_region_rate,
                 net::gf_kernel_in_use());
  }

  MechanismParams params;
  params.k = cli.k;
  params.m = cli.m;
  params.n_level = cli.n_level;
  params.storage_floor = cli.floor;
  if (cli.batch_encode && cli.pipeline_encode) {
    std::fprintf(stderr,
                 "--batch-encode and --pipeline-encode are exclusive\n");
    return 2;
  }
  if (cli.batch_encode) {
    params.transitions = core::TransitionStrategy::kBatched;
  } else if (cli.pipeline_encode) {
    params.transitions = core::TransitionStrategy::kPipelined;
  }
  Mechanism mechanism = parse_mechanism(cli.mechanism);

  // --- run ---------------------------------------------------------------
  sim::Simulation sim;
  staging::StagingService service(service_opts, &sim,
                                  make_scheme(mechanism, params));
  std::unique_ptr<meta::MetaService> meta_service;
  std::unique_ptr<meta::MetaClient> meta_client;
  if (cli.meta_followers > 0) {
    meta::MetaOptions meta_opts;
    meta_opts.followers = cli.meta_followers;
    meta_service = std::make_unique<meta::MetaService>(&service, meta_opts);
    meta_client = std::make_unique<meta::MetaClient>(meta_service.get());
    service.attach_metadata(meta_client.get());
  } else if (!cli.meta_kills.empty()) {
    std::fprintf(stderr, "--meta-kill requires --meta K\n");
    return 2;
  }
  DriverOptions driver_opts;
  driver_opts.verify_reads = cli.verify;
  WorkloadDriver driver(&service, driver_opts);
  for (Version step : cli.meta_kills) {
    driver.add_hook(step, [&meta_service] {
      meta_service->fail_replica(meta_service->primary_host());
    });
  }
  for (auto [step, server] : cli.fails) {
    driver.add_hook(step,
                    [&service, s = server] { service.kill_server(s); });
  }
  for (auto [step, server] : cli.replaces) {
    driver.add_hook(
        step, [&service, s = server] { service.replace_server(s); });
  }
  std::unique_ptr<membership::Manager> member_mgr;
  if (!cli.joins.empty() || !cli.drains.empty()) {
    membership::ManagerOptions mm_opts;
    mm_opts.replication_group = cli.n_level + 1;
    member_mgr = std::make_unique<membership::Manager>(&service, mm_opts);
    for (Version step : cli.joins) {
      driver.add_hook(step, [&sim, mgr = member_mgr.get()] {
        mgr->begin_join(sim.now());
        mgr->run_to_completion(sim.now());
      });
    }
    for (auto [step, server] : cli.drains) {
      driver.add_hook(step, [&sim, mgr = member_mgr.get(), s = server] {
        Status st = mgr->begin_drain(s, sim.now());
        if (!st.ok()) {
          std::fprintf(stderr, "--drain %u: %s\n", s,
                       st.to_string().c_str());
          return;
        }
        mgr->run_to_completion(sim.now());
      });
    }
  }
  std::unique_ptr<resilience::Scrubber> scrubber;
  if (cli.scrub_mtbf > 0) {
    resilience::ScrubOptions scrub_opts;
    scrub_opts.mtbf_seconds = cli.scrub_mtbf;
    scrubber =
        std::make_unique<resilience::Scrubber>(&service, scrub_opts);
    scrubber->start();
  }
  RunMetrics metrics = driver.run(plan);

  // --- report -------------------------------------------------------------
  if (cli.csv) {
    std::printf("step,write_ms,read_ms,write_fail,read_fail,data_loss\n");
    for (std::size_t ts = 0; ts < metrics.steps.size(); ++ts) {
      const auto& s = metrics.steps[ts];
      std::printf("%zu,%.6f,%.6f,%zu,%zu,%zu\n", ts,
                  s.write_response.mean() * 1e3,
                  s.read_response.mean() * 1e3, s.write_failures,
                  s.read_failures, s.data_loss_reads);
    }
    return 0;
  }

  std::printf("workload        : %s (%zu steps)\n", plan.name.c_str(),
              metrics.steps.size());
  std::printf("mechanism       : %s\n", cli.mechanism.c_str());
  std::printf("cluster         : %zu servers / %zu cabinets, RS(%zu+%zu),"
              " %zu replica(s), floor %.0f%%\n",
              cli.servers, cli.cabinets, cli.k, cli.m, cli.n_level,
              cli.floor * 100);
  std::printf("write response  : %.3f ms avg over %zu puts\n",
              metrics.avg_write_response() * 1e3, metrics.total_writes);
  std::printf("read response   : %.3f ms avg over %zu gets\n",
              metrics.avg_read_response() * 1e3, metrics.total_reads);
  std::printf("storage eff.    : %.0f%%\n",
              metrics.storage_efficiency * 100);
  std::printf("makespan        : %.3f s (virtual)\n",
              to_seconds(metrics.makespan));
  std::printf("failures        : %zu data-loss reads, %zu corrupt\n",
              metrics.data_loss_reads(), metrics.corrupt_reads());
  if (auto* corec = dynamic_cast<core::CorecScheme*>(&service.scheme())) {
    std::printf("corec           : %llu fast-path writes, %llu "
                "transitioned, %llu demotions, %llu promotions, "
                "repair backlog %zu\n",
                static_cast<unsigned long long>(
                    corec->stats().writes_replicated),
                static_cast<unsigned long long>(
                    corec->stats().writes_encoded),
                static_cast<unsigned long long>(
                    corec->stats().demotions),
                static_cast<unsigned long long>(
                    corec->stats().promotions),
                corec->repair_backlog());
    if (const auto* pe = corec->pipelined_encoder()) {
      const auto& ps = pe->stats();
      std::printf("pipeline encode : %llu ring(s) over %llu hop(s), "
                  "%llu fallback(s), %llu corrupt frame(s); max node "
                  "%llu B moved\n",
                  static_cast<unsigned long long>(ps.ring_encodes),
                  static_cast<unsigned long long>(ps.hops),
                  static_cast<unsigned long long>(ps.fallbacks),
                  static_cast<unsigned long long>(ps.corrupt_partials),
                  static_cast<unsigned long long>(
                      ps.max_node_bytes_moved));
    }
  }
  if (meta_service != nullptr) {
    const auto& ms = meta_service->stats();
    // Report the group the service actually built (the requested K is
    // clamped to the number of servers) as it stands at run end.
    std::size_t group = meta_service->replica_hosts().size();
    std::printf("metadata        : primary+%zu followers, %llu ops logged"
                " (%llu B streamed), %llu snapshots (%llu B shipped)\n",
                group - (meta_service->available() ? 1 : 0),
                static_cast<unsigned long long>(ms.ops_logged),
                static_cast<unsigned long long>(ms.log_bytes_streamed),
                static_cast<unsigned long long>(ms.snapshots_taken),
                static_cast<unsigned long long>(ms.snapshot_bytes_shipped));
    std::printf("meta latencies  : replication lag %.1f us avg; "
                "%llu failover(s) %.1f us avg; %llu catch-up(s) %.1f us "
                "avg; %llu unacked op(s) lost\n",
                ms.replication_lag.mean() / 1e3,
                static_cast<unsigned long long>(ms.failovers),
                ms.failover_time.mean() / 1e3,
                static_cast<unsigned long long>(ms.catchups),
                ms.catchup_time.mean() / 1e3,
                static_cast<unsigned long long>(ms.ops_lost_unacked));
  }
  {
    const auto& in = service.integrity();
    std::vector<std::string> armed = failpoint::registry().armed();
    if (!cli.failpoints.empty() || in.checks > 0) {
      std::printf("integrity       : %llu checksum checks, %llu "
                  "mismatches, %llu quarantined; %zu failpoint(s) still "
                  "armed\n",
                  static_cast<unsigned long long>(in.checks),
                  static_cast<unsigned long long>(in.mismatches),
                  static_cast<unsigned long long>(in.quarantined),
                  armed.size());
    }
  }
  if (member_mgr != nullptr) {
    for (const auto& t : member_mgr->history()) {
      std::string target_label =
          t.target == kInvalidServer ? ""
                                     : " s" + std::to_string(t.target);
      std::printf("membership      : %s%s -> map v%llu: %llu scanned, "
                  "%llu moved, %llu rebuilt, %llu skipped, %llu B moved "
                  "in %.3f s (token wait %.3f s)%s\n",
                  membership::to_string(t.kind), target_label.c_str(),
                  static_cast<unsigned long long>(t.map_version),
                  static_cast<unsigned long long>(t.objects_scanned),
                  static_cast<unsigned long long>(t.objects_moved),
                  static_cast<unsigned long long>(t.objects_rebuilt),
                  static_cast<unsigned long long>(t.objects_skipped),
                  static_cast<unsigned long long>(t.bytes_moved),
                  to_seconds(t.finished - t.started),
                  to_seconds(t.token_wait),
                  t.aborted ? " [ABORTED]" : "");
    }
  }
  if (scrubber != nullptr) {
    const auto& ss = scrubber->stats();
    std::printf("scrubber        : %llu pass(es), %llu shards verified "
                "(%llu B), %llu corrupt, %llu missing, %llu repairs\n",
                static_cast<unsigned long long>(ss.passes_completed),
                static_cast<unsigned long long>(ss.shards_verified),
                static_cast<unsigned long long>(ss.bytes_verified),
                static_cast<unsigned long long>(ss.corruptions_found),
                static_cast<unsigned long long>(ss.missing_found),
                static_cast<unsigned long long>(ss.repairs_triggered));
  }
  if (cli.verify) {
    std::printf("verification    : %s\n",
                metrics.corrupt_reads() == 0 ? "all reads byte-exact"
                                             : "CORRUPTION DETECTED");
    return metrics.corrupt_reads() == 0 ? 0 : 1;
  }
  return 0;
}
