#!/usr/bin/env sh
# Runs the concurrent data-plane microbenchmarks (single-lock
# ConcurrentStore vs lock-striped ShardedObjectStore across 1→8 threads
# and three read/write mixes) in google-benchmark's JSON format and
# writes one machine-readable file (default BENCH_concurrency.json).
# The per-benchmark counters carry the shard contention telemetry
# (lock acquisitions, contended %, max shard occupancy) and the
# zero-copy proof counters (copied_bytes/crc_recomputes must stay 0 on
# the read-only sweep), so scaling regressions are visible PR over PR.
#
# Usage: bench_concurrency_json.sh <micro_concurrency-binary> [out.json]
set -eu

MICRO_CONCURRENCY=${1:?usage: bench_concurrency_json.sh micro_concurrency [out.json]}
OUT=${2:-BENCH_concurrency.json}

TMPDIR_JSON=$(mktemp -d)
trap 'rm -rf "$TMPDIR_JSON"' EXIT

"$MICRO_CONCURRENCY" --benchmark_format=json \
  --benchmark_out="$TMPDIR_JSON/concurrency.json" \
  --benchmark_out_format=json >/dev/null

{
  printf '{\n"micro_concurrency": '
  cat "$TMPDIR_JSON/concurrency.json"
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"
