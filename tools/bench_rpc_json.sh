#!/usr/bin/env sh
# Benchmarks the real network serving path: starts corec-server on an
# ephemeral loopback port, then drives it with the multi-process
# open-loop load generator (micro_rpc) for three op mixes — put-heavy,
# get-heavy, and 50/50 — at 4 client processes each. Each run records
# end-to-end throughput and p50/p95/p99 latency over TCP, so RPC-path
# regressions (framing, event loop, dispatch, zero-copy handoff) are
# visible PR over PR in one machine-readable file.
#
# Usage: bench_rpc_json.sh <micro_rpc-binary> <corec-server-binary> [out.json]
set -eu

MICRO_RPC=${1:?usage: bench_rpc_json.sh micro_rpc corec-server [out.json]}
SERVER=${2:?usage: bench_rpc_json.sh micro_rpc corec-server [out.json]}
OUT=${3:-BENCH_rpc.json}

CLIENTS=${BENCH_RPC_CLIENTS:-4}
SECONDS_PER_MIX=${BENCH_RPC_SECONDS:-2}
VALUE_BYTES=${BENCH_RPC_BYTES:-4096}

TMPDIR_JSON=$(mktemp -d)
SERVER_PID=
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMPDIR_JSON"
}
trap cleanup EXIT

"$SERVER" --port 0 --servers 4 --workers 2 --pool-dispatch \
  > "$TMPDIR_JSON/server.log" 2>&1 &
SERVER_PID=$!

# The server prints "corec-server listening on 127.0.0.1:PORT (...)"
# once the socket is bound; poll for it rather than racing the bind.
PORT=
i=0
while [ $i -lt 100 ]; do
  PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' \
    "$TMPDIR_JSON/server.log" | head -n 1)
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "corec-server exited before binding:" >&2
    cat "$TMPDIR_JSON/server.log" >&2
    exit 1
  }
  sleep 0.1
  i=$((i + 1))
done
[ -n "$PORT" ] || { echo "failed to scrape server port" >&2; exit 1; }
echo "corec-server up on port $PORT (pid $SERVER_PID)"

for MIX in put get mixed; do
  echo "running mix=$MIX clients=$CLIENTS seconds=$SECONDS_PER_MIX ..."
  "$MICRO_RPC" --port "$PORT" --clients "$CLIENTS" \
    --seconds "$SECONDS_PER_MIX" --bytes "$VALUE_BYTES" --mix "$MIX" \
    > "$TMPDIR_JSON/$MIX.json"
done

{
  printf '{\n"bench": "rpc_loopback",\n'
  printf '"transport": "tcp length-prefixed frames, 4 server shards, pool dispatch",\n'
  printf '"put": %s,\n' "$(cat "$TMPDIR_JSON/put.json")"
  printf '"get": %s,\n' "$(cat "$TMPDIR_JSON/get.json")"
  printf '"mixed": %s\n' "$(cat "$TMPDIR_JSON/mixed.json")"
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"
