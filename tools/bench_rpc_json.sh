#!/usr/bin/env sh
# Benchmarks the real network serving path: starts corec-server on an
# ephemeral loopback port, then drives it with the multi-process
# open-loop load generator (micro_rpc) for three op mixes — put-heavy,
# get-heavy, and 50/50 — at 4 client processes each. Each run records
# end-to-end throughput and p50/p95/p99 latency over TCP, so RPC-path
# regressions (framing, event loop, dispatch, zero-copy handoff) are
# visible PR over PR in one machine-readable file.
#
# A second phase sweeps the C10k plane: connection counts 64..4096,
# single-loop vs multi-loop servers, pipelined clients (depth 8 per
# connection). Each cell restarts the server so its shutdown stats line
# (writev syscalls-per-frame, data-bearing recv syscalls-per-frame,
# frames-per-recv/writev histograms, slab-pool hit/miss counters,
# per-loop frame counts) can be scraped into the record. The sweep
# fails the script if the multi-loop p99 regresses past FACTOR x the
# single-loop p99 at >= 1024 connections — sharding the event loop must
# never make tail latency worse — or if the buffered receive path stops
# batching: at pipeline depth >= 8 every cell must complete frames with
# < 1.0 data-bearing recv syscalls per frame, and steady-state slab
# pool misses must stay ~0 per frame.
#
# Usage: bench_rpc_json.sh <micro_rpc-binary> <corec-server-binary> [out.json]
#
# Env knobs:
#   BENCH_RPC_CLIENTS / _SECONDS / _BYTES      three-mix phase shape
#   BENCH_RPC_C10K_CONNS   sweep connection counts (default "64 256 1024 4096")
#   BENCH_RPC_C10K_LOOPS   sweep loop counts      (default "1 4")
#   BENCH_RPC_C10K_PIPELINE  outstanding requests per connection (default 8)
#   BENCH_RPC_C10K_SECONDS   measured seconds per cell (default 2)
#   BENCH_RPC_C10K_P99_FACTOR  regression tolerance (default 1.5; 2.0 when
#                              nproc=1, where extra loops only add scheduling)
#   BENCH_RPC_RECV_PF_MAX   recv-per-frame ceiling at depth >= 8 (default 1.0)
#   BENCH_RPC_POOL_MISS_PF_MAX  pool-miss-per-frame ceiling (default 0.1;
#                               the allowance covers one-time warmup carves —
#                               per-connection read buffers and the bounded
#                               put-slot working set — which short cells
#                               amortize over fewer frames)
set -eu

MICRO_RPC=${1:?usage: bench_rpc_json.sh micro_rpc corec-server [out.json]}
SERVER=${2:?usage: bench_rpc_json.sh micro_rpc corec-server [out.json]}
OUT=${3:-BENCH_rpc.json}

CLIENTS=${BENCH_RPC_CLIENTS:-4}
SECONDS_PER_MIX=${BENCH_RPC_SECONDS:-2}
VALUE_BYTES=${BENCH_RPC_BYTES:-4096}

C10K_CONNS=${BENCH_RPC_C10K_CONNS:-"64 256 1024 4096"}
C10K_LOOPS=${BENCH_RPC_C10K_LOOPS:-"1 4"}
C10K_PIPELINE=${BENCH_RPC_C10K_PIPELINE:-8}
C10K_SECONDS=${BENCH_RPC_C10K_SECONDS:-2}
RECV_PF_MAX=${BENCH_RPC_RECV_PF_MAX:-1.0}
POOL_MISS_PF_MAX=${BENCH_RPC_POOL_MISS_PF_MAX:-0.1}

NPROC=$(nproc 2>/dev/null || echo 1)
if [ "$NPROC" -le 1 ]; then
  P99_FACTOR=${BENCH_RPC_C10K_P99_FACTOR:-2.0}
  echo "note: single-core host; multi-loop sharding cannot run in" \
    "parallel, p99 gate tolerance defaults to $P99_FACTOR" >&2
else
  P99_FACTOR=${BENCH_RPC_C10K_P99_FACTOR:-1.5}
fi

# The 4096-connection cells need ~4k fds in the server and ~1k per
# client child; raise the soft limit if the hard limit allows.
ulimit -n 16384 2>/dev/null || true

TMPDIR_JSON=$(mktemp -d)
SERVER_PID=
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMPDIR_JSON"
}
trap cleanup EXIT

# start_server <logfile> [extra corec-server args...]
# Sets SERVER_PID and PORT.
start_server() {
  log=$1
  shift
  "$SERVER" --port 0 --servers 4 "$@" > "$log" 2>&1 &
  SERVER_PID=$!
  # The server prints "corec-server listening on 127.0.0.1:PORT (...)"
  # once the socket is bound; poll for it rather than racing the bind.
  PORT=
  i=0
  while [ $i -lt 100 ]; do
    PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' \
      "$log" | head -n 1)
    [ -n "$PORT" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
      echo "corec-server exited before binding:" >&2
      cat "$log" >&2
      exit 1
    }
    sleep 0.1
    i=$((i + 1))
  done
  [ -n "$PORT" ] || { echo "failed to scrape server port" >&2; exit 1; }
}

# stop_server <logfile>: SIGINT, wait, and scrape the shutdown stats
# JSON into SERVER_STATS.
stop_server() {
  kill -INT "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=
  SERVER_STATS=$(sed -n 's/^corec-server stats //p' "$1" | head -n 1)
  [ -n "$SERVER_STATS" ] || SERVER_STATS='{}'
}

# ---- phase 1: op-mix baseline (pool dispatch, default loops) -------------

start_server "$TMPDIR_JSON/server.log" --workers 2 --pool-dispatch
echo "corec-server up on port $PORT (pid $SERVER_PID)"

for MIX in put get mixed; do
  echo "running mix=$MIX clients=$CLIENTS seconds=$SECONDS_PER_MIX ..."
  "$MICRO_RPC" --port "$PORT" --clients "$CLIENTS" \
    --seconds "$SECONDS_PER_MIX" --bytes "$VALUE_BYTES" --mix "$MIX" \
    > "$TMPDIR_JSON/$MIX.json"
done
stop_server "$TMPDIR_JSON/server.log"

# ---- phase 2: C10k sweep (sync dispatch, pipelined clients) --------------

CELLS=
for LOOPS in $C10K_LOOPS; do
  for CONNS in $C10K_CONNS; do
    LOG="$TMPDIR_JSON/c10k_${LOOPS}_${CONNS}.log"
    start_server "$LOG" --loops "$LOOPS"
    echo "c10k: loops=$LOOPS connections=$CONNS pipeline=$C10K_PIPELINE ..."
    "$MICRO_RPC" --port "$PORT" --clients "$CLIENTS" \
      --seconds "$C10K_SECONDS" --bytes "$VALUE_BYTES" --mix mixed \
      --connections "$CONNS" --pipeline "$C10K_PIPELINE" \
      > "$TMPDIR_JSON/c10k_${LOOPS}_${CONNS}.json"
    stop_server "$LOG"
    CELL=$(printf '{"loops":%s,"connections":%s,"load":%s,"server":%s}' \
      "$LOOPS" "$CONNS" \
      "$(cat "$TMPDIR_JSON/c10k_${LOOPS}_${CONNS}.json")" "$SERVER_STATS")
    CELLS="${CELLS:+$CELLS,
}$CELL"
    # Keep the per-cell p99 and receive-path stats around for the gates.
    sed -n 's/.*"p99_us":\([0-9.]*\).*/\1/p' \
      "$TMPDIR_JSON/c10k_${LOOPS}_${CONNS}.json" \
      > "$TMPDIR_JSON/p99_${LOOPS}_${CONNS}"
    echo "$SERVER_STATS" | sed -n 's/.*"recv_per_frame":\([0-9.]*\).*/\1/p' \
      > "$TMPDIR_JSON/recvpf_${LOOPS}_${CONNS}"
    echo "$SERVER_STATS" \
      | sed -n 's/.*"pool_miss_per_frame":\([0-9.]*\).*/\1/p' \
      > "$TMPDIR_JSON/poolpf_${LOOPS}_${CONNS}"
    echo "$SERVER_STATS" | sed -n 's/.*"frames_in":\([0-9]*\).*/\1/p' \
      > "$TMPDIR_JSON/framesin_${LOOPS}_${CONNS}"
  done
done

# ---- p99 regression gate -------------------------------------------------
# At every swept connection count >= 1024, the multi-loop p99 must stay
# within FACTOR x the single-loop p99.

SINGLE_LOOP=$(echo "$C10K_LOOPS" | awk '{print $1}')
GATE_CHECKS=
GATE_FAIL=0
for LOOPS in $C10K_LOOPS; do
  [ "$LOOPS" = "$SINGLE_LOOP" ] && continue
  for CONNS in $C10K_CONNS; do
    [ "$CONNS" -ge 1024 ] || continue
    BASE=$(cat "$TMPDIR_JSON/p99_${SINGLE_LOOP}_${CONNS}")
    MULTI=$(cat "$TMPDIR_JSON/p99_${LOOPS}_${CONNS}")
    OK=$(awk -v m="$MULTI" -v b="$BASE" -v f="$P99_FACTOR" \
      'BEGIN { print (m <= b * f) ? "true" : "false" }')
    [ "$OK" = "true" ] || GATE_FAIL=1
    CHECK=$(printf \
      '{"connections":%s,"loops":%s,"p99_single_us":%s,"p99_multi_us":%s,"ok":%s}' \
      "$CONNS" "$LOOPS" "$BASE" "$MULTI" "$OK")
    GATE_CHECKS="${GATE_CHECKS:+$GATE_CHECKS,}$CHECK"
    echo "p99 gate: conns=$CONNS loops=$LOOPS ${MULTI}us vs" \
      "loops=$SINGLE_LOOP ${BASE}us (factor $P99_FACTOR) -> ok=$OK"
  done
done

# ---- buffered-receive gate -----------------------------------------------
# At pipeline depth >= 8 the buffered read path must complete frames
# with fewer than RECV_PF_MAX data-bearing recv syscalls per frame, and
# the warm slab pool must keep heap carves ~0 per frame, in every cell
# that actually moved frames.

RECV_CHECKS=
RECV_FAIL=0
if [ "$C10K_PIPELINE" -ge 8 ]; then
  for LOOPS in $C10K_LOOPS; do
    for CONNS in $C10K_CONNS; do
      FRAMES=$(cat "$TMPDIR_JSON/framesin_${LOOPS}_${CONNS}")
      RECV_PF=$(cat "$TMPDIR_JSON/recvpf_${LOOPS}_${CONNS}")
      POOL_PF=$(cat "$TMPDIR_JSON/poolpf_${LOOPS}_${CONNS}")
      [ -n "$FRAMES" ] && [ "$FRAMES" -gt 0 ] || continue
      [ -n "$RECV_PF" ] && [ -n "$POOL_PF" ] || continue
      OK=$(awk -v r="$RECV_PF" -v p="$POOL_PF" \
        -v rmax="$RECV_PF_MAX" -v pmax="$POOL_MISS_PF_MAX" \
        'BEGIN { print (r < rmax && p <= pmax) ? "true" : "false" }')
      [ "$OK" = "true" ] || RECV_FAIL=1
      CHECK=$(printf \
        '{"connections":%s,"loops":%s,"recv_per_frame":%s,"pool_miss_per_frame":%s,"ok":%s}' \
        "$CONNS" "$LOOPS" "$RECV_PF" "$POOL_PF" "$OK")
      RECV_CHECKS="${RECV_CHECKS:+$RECV_CHECKS,}$CHECK"
      echo "recv gate: conns=$CONNS loops=$LOOPS" \
        "recv/frame=$RECV_PF (max $RECV_PF_MAX)" \
        "pool-miss/frame=$POOL_PF (max $POOL_MISS_PF_MAX) -> ok=$OK"
    done
  done
fi

{
  printf '{\n"bench": "rpc_loopback",\n'
  printf '"transport": "tcp length-prefixed frames, 4 server shards, pool dispatch",\n'
  printf '"put": %s,\n' "$(cat "$TMPDIR_JSON/put.json")"
  printf '"get": %s,\n' "$(cat "$TMPDIR_JSON/get.json")"
  printf '"mixed": %s,\n' "$(cat "$TMPDIR_JSON/mixed.json")"
  printf '"c10k": {\n'
  printf '"pipeline": %s,\n' "$C10K_PIPELINE"
  printf '"clients": %s,\n' "$CLIENTS"
  printf '"nproc": %s,\n' "$NPROC"
  printf '"cells": [\n%s\n],\n' "$CELLS"
  printf '"p99_gate": {"factor": %s, "checks": [%s], "pass": %s},\n' \
    "$P99_FACTOR" "$GATE_CHECKS" \
    "$([ "$GATE_FAIL" -eq 0 ] && echo true || echo false)"
  printf \
    '"recv_gate": {"recv_per_frame_max": %s, "pool_miss_per_frame_max": %s, "checks": [%s], "pass": %s}\n' \
    "$RECV_PF_MAX" "$POOL_MISS_PF_MAX" "$RECV_CHECKS" \
    "$([ "$RECV_FAIL" -eq 0 ] && echo true || echo false)"
  printf '}\n}\n'
} > "$OUT"

echo "wrote $OUT"
if [ "$GATE_FAIL" -ne 0 ]; then
  echo "FAIL: multi-loop p99 regressed past ${P99_FACTOR}x single-loop" \
    "at >= 1024 connections" >&2
  exit 1
fi
if [ "$RECV_FAIL" -ne 0 ]; then
  echo "FAIL: buffered receive path regressed — recv/frame >=" \
    "$RECV_PF_MAX or pool-miss/frame > $POOL_MISS_PF_MAX at pipeline" \
    "depth $C10K_PIPELINE" >&2
  exit 1
fi
