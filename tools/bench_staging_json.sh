#!/usr/bin/env sh
# Runs the zero-copy data-plane microbenchmarks in google-benchmark's
# JSON format and writes one machine-readable file (default
# BENCH_staging.json). Besides wall-time throughput, the per-benchmark
# counters record allocations/object, bytes copied/object, CRC
# recompute vs cache-hit rates, and — for the three replica→EC
# transition strategies (BM_TransitionPerObject / BM_TransitionBatched
# / BM_TransitionPipelined) — sim_drain_ms/sim_GBps encode throughput
# plus max_node_bytes_per_obj and max_node_cpu_us_per_obj, the per-node
# traffic/CPU hot-spot fields the ring pipeline exists to shrink. So
# payload copy-count and traffic-placement regressions are visible PR
# over PR even when wall time stays flat.
#
# Usage: bench_staging_json.sh <micro_staging-binary> [out.json]
set -eu

MICRO_STAGING=${1:?usage: bench_staging_json.sh micro_staging [out.json]}
OUT=${2:-BENCH_staging.json}

TMPDIR_JSON=$(mktemp -d)
trap 'rm -rf "$TMPDIR_JSON"' EXIT

"$MICRO_STAGING" --benchmark_format=json \
  --benchmark_out="$TMPDIR_JSON/staging.json" \
  --benchmark_out_format=json >/dev/null

{
  printf '{\n"micro_staging": '
  cat "$TMPDIR_JSON/staging.json"
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"
