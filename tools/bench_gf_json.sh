#!/usr/bin/env sh
# Runs the GF/RS microbenchmarks in google-benchmark's JSON format and
# merges them into one machine-readable file (default BENCH_gf.json) so
# the erasure hot-path perf trajectory can be tracked PR over PR.
#
# Usage: bench_gf_json.sh <micro_gf-binary> <micro_rs-binary> [out.json]
# Honors COREC_GF_KERNEL to pin a kernel for the RS benches; micro_gf
# always reports every kernel available on this CPU side by side.
set -eu

MICRO_GF=${1:?usage: bench_gf_json.sh micro_gf micro_rs [out.json]}
MICRO_RS=${2:?usage: bench_gf_json.sh micro_gf micro_rs [out.json]}
OUT=${3:-BENCH_gf.json}

TMPDIR_JSON=$(mktemp -d)
trap 'rm -rf "$TMPDIR_JSON"' EXIT

"$MICRO_GF" --benchmark_format=json \
  --benchmark_out="$TMPDIR_JSON/gf.json" --benchmark_out_format=json \
  >/dev/null
"$MICRO_RS" --benchmark_format=json \
  --benchmark_out="$TMPDIR_JSON/rs.json" --benchmark_out_format=json \
  >/dev/null

{
  printf '{\n"micro_gf": '
  cat "$TMPDIR_JSON/gf.json"
  printf ',\n"micro_rs": '
  cat "$TMPDIR_JSON/rs.json"
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"
