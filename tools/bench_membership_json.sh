#!/usr/bin/env sh
# Runs the elastic-membership rebalance benchmark and writes one
# machine-readable record (default BENCH_membership.json). The record
# has two latency profiles for the same closed-loop readers — steady
# state, and racing a continuous drain+join migration loop — plus the
# rebalancer's own throughput (transitions, objects and MB moved, MB/s
# of migration busy time). The headline acceptance number is
# p99_rebuild_over_steady: client-visible get p99 during rebuild must
# stay within 3x of steady state, and the wrapper fails if it does not,
# so a rebalance loop that stalls readers turns the perf-smoke job red.
#
# Env knobs: BENCH_MEMBERSHIP_SECONDS (per phase, default 1.0),
# BENCH_MEMBERSHIP_OBJECTS, BENCH_MEMBERSHIP_READERS.
#
# Usage: bench_membership_json.sh <micro_membership-binary> [out.json]
set -eu

MICRO=${1:?usage: bench_membership_json.sh micro_membership [out.json]}
OUT=${2:-BENCH_membership.json}

SECONDS_PER_PHASE=${BENCH_MEMBERSHIP_SECONDS:-1.0}
OBJECTS=${BENCH_MEMBERSHIP_OBJECTS:-4096}
READERS=${BENCH_MEMBERSHIP_READERS:-4}

"$MICRO" --seconds "$SECONDS_PER_PHASE" --objects "$OBJECTS" \
  --readers "$READERS" > "$OUT"

RATIO=$(sed -n 's/.*"p99_rebuild_over_steady": \([0-9.]*\).*/\1/p' "$OUT")
echo "wrote $OUT (p99 rebuild/steady = ${RATIO:-?})"
if [ -n "$RATIO" ]; then
  if awk "BEGIN { exit !($RATIO > 3.0) }"; then
    echo "FAIL: rebuild p99 is ${RATIO}x steady state (bound: 3x)" >&2
    exit 1
  fi
fi
