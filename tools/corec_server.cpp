// corec-server — the CoREC staging server binary. Fronts a
// ThreadFabric with the epoll RPC event loop and serves
// put/get/query/erase/stat to corec_client peers until SIGINT/SIGTERM,
// then prints a final stats summary.
//
//   corec-server --port 7457
//   corec-server --port 0 --servers 8 --pool-dispatch
//   COREC_FAILPOINTS='rpc.server.write=partial:p=0.01' corec-server ...
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "common/failpoint.hpp"
#include "rpc/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

void usage() {
  std::fprintf(
      stderr,
      "usage: corec-server [options]\n"
      "  --host ADDR         bind address (default 127.0.0.1)\n"
      "  --port N            TCP port; 0 = kernel-assigned (default 7457)\n"
      "  --servers N         fabric staging servers (default 4)\n"
      "  --store-shards N    lock stripes per server store (0 = auto)\n"
      "  --dir-shards N      directory lock stripes (0 = auto)\n"
      "  --workers N         fabric worker threads (0 = auto)\n"
      "  --capacity BYTES    per-server capacity (0 = unlimited)\n"
      "  --pool-dispatch     run ops on the worker pool instead of the\n"
      "                      event-loop threads\n"
      "  --loops N           epoll event-loop shards\n"
      "                      (0 = min(hardware_concurrency, 4))\n"
      "  --segment BYTES     payload slice cap per write segment\n"
      "                      (default 1 MiB)\n"
      "  --max-frame BYTES   frame body ceiling (default 64 MiB)\n"
      "  --read-chunk BYTES  pooled per-connection read buffer; one\n"
      "                      recv can deliver many frames (default\n"
      "                      256 KiB; 0 = legacy unbuffered reads)\n"
      "  --read-cutover B    largest body assembled inside the read\n"
      "                      buffer (default 64 KiB)\n"
      "  --failpoints SPEC   arm fault-injection points\n");
}

}  // namespace

int main(int argc, char** argv) {
  corec::rpc::ServerOptions options;
  options.port = 7457;
  std::string failpoints;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (a == "--host") {
      options.host = next();
    } else if (a == "--port") {
      options.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (a == "--servers") {
      options.num_servers = static_cast<std::size_t>(std::atol(next()));
    } else if (a == "--store-shards") {
      options.fabric.store_shards =
          static_cast<std::size_t>(std::atol(next()));
    } else if (a == "--dir-shards") {
      options.fabric.directory_shards =
          static_cast<std::size_t>(std::atol(next()));
    } else if (a == "--workers") {
      options.fabric.workers = static_cast<std::size_t>(std::atol(next()));
    } else if (a == "--capacity") {
      options.fabric.server_capacity =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--pool-dispatch") {
      options.pool_dispatch = true;
    } else if (a == "--loops") {
      options.num_loops = static_cast<std::size_t>(std::atol(next()));
    } else if (a == "--segment") {
      options.max_segment_bytes =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--max-frame") {
      options.max_frame_bytes = static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--read-chunk") {
      options.read_chunk_bytes =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--read-cutover") {
      options.inline_body_cutover =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--failpoints") {
      failpoints = next();
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", a.c_str());
      usage();
      return 2;
    }
  }

  if (!failpoints.empty()) {
    corec::Status st =
        corec::failpoint::registry().arm_from_string(failpoints);
    if (!st.ok()) {
      std::fprintf(stderr, "--failpoints: %s\n", st.message().c_str());
      return 2;
    }
  }

  corec::rpc::Server server(options);
  corec::Status st = server.start();
  if (!st.ok()) {
    std::fprintf(stderr, "corec-server: %s\n", st.to_string().c_str());
    return 1;
  }
  // The scrape-able readiness line (bench_rpc_json.sh and the CI smoke
  // job read the resolved port from it).
  std::printf(
      "corec-server listening on %s:%u (%zu servers, %zu loops, %s "
      "dispatch)\n",
      server.host().c_str(), server.port(), options.num_servers,
      server.num_loops(), options.pool_dispatch ? "pool" : "sync");
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (!g_stop) {
    ::poll(nullptr, 0, 200);
  }

  const auto rpc = server.stats();
  const auto fab = server.fabric().stats();
  server.stop();
  std::printf(
      "corec-server: %llu conns (%llu live), %llu frames in / %llu out, "
      "%llu B in / %llu B out\n",
      static_cast<unsigned long long>(rpc.accepted),
      static_cast<unsigned long long>(rpc.active),
      static_cast<unsigned long long>(rpc.frames_in),
      static_cast<unsigned long long>(rpc.frames_out),
      static_cast<unsigned long long>(rpc.bytes_in),
      static_cast<unsigned long long>(rpc.bytes_out));
  std::printf(
      "corec-server: %llu puts (%llu failed), %llu gets (%llu misses), "
      "%llu erases; %llu protocol errors, %llu backpressure pauses, "
      "%llu accept pauses, %llu injected failures\n",
      static_cast<unsigned long long>(fab.puts),
      static_cast<unsigned long long>(fab.put_failures),
      static_cast<unsigned long long>(fab.gets),
      static_cast<unsigned long long>(fab.get_misses),
      static_cast<unsigned long long>(fab.erases),
      static_cast<unsigned long long>(rpc.protocol_errors),
      static_cast<unsigned long long>(rpc.backpressure_pauses),
      static_cast<unsigned long long>(rpc.accept_pauses),
      static_cast<unsigned long long>(rpc.injected_failures));
  // Machine-readable transport record (bench_rpc_json.sh scrapes it):
  // per-loop syscall efficiency on both directions (writev coalescing
  // out, buffered multi-frame reads in), the frames-per-call
  // histograms, and the slab-allocator counters.
  const auto& pm = corec::payload_metrics();
  const std::uint64_t pool_hits =
      pm.pool_hits.load(std::memory_order_relaxed);
  const std::uint64_t pool_misses =
      pm.pool_misses.load(std::memory_order_relaxed);
  const std::uint64_t pool_oversize =
      pm.pool_oversize.load(std::memory_order_relaxed);
  const long long pool_outstanding =
      pm.pool_outstanding_bytes.load(std::memory_order_relaxed);
  std::printf("corec-server stats {\"loops\":%zu,\"accepted\":%llu,"
              "\"frames_in\":%llu,\"frames_out\":%llu,"
              "\"recv_calls\":%llu,\"recv_data_calls\":%llu,"
              "\"recv_eagain_calls\":%llu,\"recv_per_frame\":%.4f,"
              "\"writev_calls\":%llu,\"payload_chunks\":%llu,"
              "\"writev_per_frame\":%.4f,"
              "\"pool_hits\":%llu,\"pool_misses\":%llu,"
              "\"pool_oversize\":%llu,\"pool_outstanding_bytes\":%lld,"
              "\"pool_miss_per_frame\":%.4f,\"batch_hist\":[",
              server.num_loops(),
              static_cast<unsigned long long>(rpc.accepted),
              static_cast<unsigned long long>(rpc.frames_in),
              static_cast<unsigned long long>(rpc.frames_out),
              static_cast<unsigned long long>(rpc.recv_calls),
              static_cast<unsigned long long>(rpc.recv_data_calls),
              static_cast<unsigned long long>(rpc.recv_eagain_calls),
              rpc.frames_in == 0
                  ? 0.0
                  : static_cast<double>(rpc.recv_data_calls) /
                        static_cast<double>(rpc.frames_in),
              static_cast<unsigned long long>(rpc.writev_calls),
              static_cast<unsigned long long>(rpc.payload_chunks),
              rpc.frames_out == 0
                  ? 0.0
                  : static_cast<double>(rpc.writev_calls) /
                        static_cast<double>(rpc.frames_out),
              static_cast<unsigned long long>(pool_hits),
              static_cast<unsigned long long>(pool_misses),
              static_cast<unsigned long long>(pool_oversize),
              pool_outstanding,
              rpc.frames_in == 0
                  ? 0.0
                  : static_cast<double>(pool_misses) /
                        static_cast<double>(rpc.frames_in));
  for (std::size_t b = 0; b < corec::rpc::kWritevBatchBuckets; ++b) {
    std::printf("%s%llu", b == 0 ? "" : ",",
                static_cast<unsigned long long>(rpc.writev_batch_hist[b]));
  }
  std::printf("],\"recv_hist\":[");
  for (std::size_t b = 0; b < corec::rpc::kRecvBatchBuckets; ++b) {
    std::printf("%s%llu", b == 0 ? "" : ",",
                static_cast<unsigned long long>(rpc.recv_batch_hist[b]));
  }
  std::printf("],\"per_loop_frames_out\":[");
  for (std::size_t i = 0; i < rpc.per_loop.size(); ++i) {
    std::printf("%s%llu", i == 0 ? "" : ",",
                static_cast<unsigned long long>(
                    rpc.per_loop[i].frames_out));
  }
  std::printf("],\"per_loop_recv_data\":[");
  for (std::size_t i = 0; i < rpc.per_loop.size(); ++i) {
    std::printf("%s%llu", i == 0 ? "" : ",",
                static_cast<unsigned long long>(
                    rpc.per_loop[i].recv_data_calls));
  }
  std::printf("],\"per_loop_recv_eagain\":[");
  for (std::size_t i = 0; i < rpc.per_loop.size(); ++i) {
    std::printf("%s%llu", i == 0 ? "" : ",",
                static_cast<unsigned long long>(
                    rpc.per_loop[i].recv_eagain_calls));
  }
  std::printf("]}\n");
  return 0;
}
